"""RunRecorder: step lifecycle, instruments, sinks, and the no-op default."""

import csv
import json
import signal

import pytest

from repro.obs.metrics import NULL_RECORDER, NullRecorder, RunRecorder, load_jsonl


class FakeClock:
    """Deterministic clock: each read advances by ``tick`` seconds."""

    def __init__(self, tick=0.010):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


def recorder(**kw):
    return RunRecorder(run_id="test", clock=FakeClock(), **kw)


class TestStepLifecycle:
    def test_step_records_wall_time(self):
        rec = recorder()
        with rec.step():
            pass
        (r,) = rec.records
        assert r["step"] == 0
        assert r["wall_ms"] > 0

    def test_steps_autonumber_and_accept_explicit_index(self):
        rec = recorder()
        with rec.step():
            pass
        with rec.step(10):
            pass
        with rec.step():
            pass
        assert [r["step"] for r in rec.records] == [0, 10, 11]

    def test_start_step_closes_unfinished_step(self):
        rec = recorder()
        rec.start_step()
        rec.start_step()
        rec.end_step()
        assert len(rec.records) == 2
        assert all(r["wall_ms"] is not None for r in rec.records)

    def test_end_without_start_raises(self):
        with pytest.raises(RuntimeError):
            recorder().end_step()

    def test_instrument_outside_step_opens_one(self):
        rec = recorder()
        rec.gauge("loss", 1.0)
        rec.end_step()
        assert rec.records[0]["gauges"] == {"loss": 1.0}


class TestInstruments:
    def test_gauge_last_write_wins(self):
        rec = recorder()
        with rec.step():
            rec.gauge("loss", 2.0)
            rec.gauge("loss", 1.0)
        assert rec.records[0]["gauges"]["loss"] == 1.0

    def test_counter_accumulates(self):
        rec = recorder()
        with rec.step():
            rec.count("samples", 32)
            rec.count("samples", 32)
        assert rec.records[0]["counters"]["samples"] == 64

    def test_timer_accumulates_across_blocks(self):
        rec = recorder()
        with rec.step():
            with rec.timer("forward"):
                pass
            with rec.timer("forward"):
                pass
        # FakeClock ticks 10 ms per read; two enter/exit pairs => 20 ms.
        assert rec.records[0]["timers_ms"]["forward"] == pytest.approx(20.0)


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        rec = recorder(meta={"scheme": "T2"})
        with rec.step():
            rec.gauge("loss", 0.5)
            rec.count("samples", 8)
            with rec.timer("forward"):
                pass
        path = rec.to_jsonl(str(tmp_path / "run.jsonl"))
        meta, records = load_jsonl(path)
        assert meta["run_id"] == "test" and meta["scheme"] == "T2"
        (r,) = records
        assert r["gauges"]["loss"] == 0.5
        assert r["counters"]["samples"] == 8
        assert r["timers_ms"]["forward"] > 0

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        rec = recorder()
        with rec.step():
            rec.gauge("loss", 1.0)
        path = rec.to_jsonl(str(tmp_path / "run.jsonl"))
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        assert lines[0]["type"] == "meta"
        assert lines[1]["type"] == "step"

    def test_csv_columns_are_union_over_steps(self, tmp_path):
        rec = recorder()
        with rec.step():
            rec.gauge("loss", 1.0)
        with rec.step():
            rec.gauge("lr", 0.1)
            rec.count("samples", 4)
        path = rec.to_csv(str(tmp_path / "run.csv"))
        with open(path, newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert {"step", "wall_ms", "gauge.loss", "gauge.lr", "counter.samples"} \
            <= set(rows[0])
        assert rows[0]["gauge.loss"] == "1.0"
        assert rows[1]["gauge.lr"] == "0.1"

    def test_load_jsonl_tolerates_missing_meta(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"step": 0, "t_start_ms": 0, "wall_ms": 1, '
                        '"gauges": {}, "counters": {}, "timers_ms": {}}\n')
        meta, records = load_jsonl(str(path))
        assert meta == {}
        assert len(records) == 1


class TestSummary:
    def test_aggregates(self):
        rec = recorder()
        for loss in (3.0, 2.0, 1.0):
            with rec.step():
                rec.gauge("loss", loss)
                rec.count("samples", 8)
                with rec.timer("forward"):
                    pass
        s = rec.summary()
        assert s["steps"] == 3
        assert s["gauges"]["loss"] == {"last": 1.0, "mean": 2.0, "min": 1.0, "max": 3.0}
        assert s["counters"]["samples"] == 24
        assert s["timers_ms"]["forward"] == pytest.approx(30.0)
        assert s["wall_ms"] > 0


class TestNullRecorder:
    def test_is_disabled_and_records_nothing(self):
        rec = NullRecorder()
        assert not rec.enabled
        with rec.step():
            rec.gauge("loss", 1.0)
            rec.count("samples", 1)
            with rec.timer("forward"):
                pass
        assert rec.records == []

    def test_shared_singleton(self):
        assert isinstance(NULL_RECORDER, NullRecorder)
        assert not NULL_RECORDER.enabled

    def test_default_recorder_is_enabled(self):
        assert RunRecorder().enabled


class TestStreamSink:
    def test_streams_each_step_as_a_complete_line(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        rec = RunRecorder(run_id="live", meta={"scheme": "T2"},
                          clock=FakeClock(), stream_path=path)
        with open(path) as fh:
            header = json.loads(fh.readline())
        assert header["type"] == "meta" and header["run_id"] == "live"
        for loss in (2.0, 1.0):
            with rec.step():
                rec.gauge("loss", loss)
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        # Every completed step is already on disk, no close() needed.
        assert [o["type"] for o in lines] == ["meta", "step", "step"]
        assert lines[2]["gauges"]["loss"] == 1.0
        rec.close()
        rec.close()  # idempotent

    def test_to_jsonl_still_rewrites_the_stream_file(self, tmp_path):
        path = str(tmp_path / "live.jsonl")
        rec = RunRecorder(run_id="live", clock=FakeClock(), stream_path=path)
        with rec.step():
            rec.gauge("loss", 1.0)
        rec.close()
        meta, records = load_jsonl(rec.to_jsonl(path))
        assert meta["run_id"] == "live" and len(records) == 1

    def test_sigkill_mid_run_leaves_no_truncated_line(self, tmp_path):
        """The satellite regression test: a child process streams steps and
        SIGKILLs itself with a step in flight; the file must contain the
        meta header plus exactly the completed steps, every line valid
        JSON."""
        import os
        import subprocess
        import sys

        import repro

        # The child must resolve `repro` the same way this process did,
        # regardless of how pytest was launched.
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p)

        path = str(tmp_path / "killed.jsonl")
        script = """
import os, signal
from repro.obs.metrics import RunRecorder

rec = RunRecorder(run_id="doomed", meta={"plan": "kill"}, stream_path=%r)
for step in range(3):
    with rec.step():
        rec.gauge("loss", 2.0 - 0.5 * step)
rec.start_step()          # a fourth step is in flight...
rec.gauge("loss", 0.0)
os.kill(os.getpid(), signal.SIGKILL)   # ...when the process dies
""" % path
        proc = subprocess.run([sys.executable, "-c", script], timeout=60,
                              capture_output=True, text=True, env=env)
        assert proc.returncode == -signal.SIGKILL

        with open(path) as fh:
            raw = fh.readlines()
        objs = [json.loads(line) for line in raw]  # no truncated JSON line
        assert all(line.endswith("\n") for line in raw)
        assert [o["type"] for o in objs] == ["meta", "step", "step", "step"]
        assert [o["step"] for o in objs[1:]] == [0, 1, 2]
        meta, records = load_jsonl(path)
        assert meta["run_id"] == "doomed" and len(records) == 3
