"""Run registry: schema validation, save/load/resolve, diff, dashboards."""

import json

import pytest

from repro.obs.telemetry import (
    Collector,
    HealthMonitor,
    LossRule,
    RunSchemaError,
    build_summary,
    diff_runs,
    format_diff,
    render_html,
    render_top,
    save_run,
    validate_run,
    write_html,
)
from repro.obs.telemetry.registry import list_runs, load_run, resolve_run


def step_event(rank, step, **fields):
    base = {"type": "step", "rank": rank, "t": 0.0, "step": step,
            "wall_ms": 10.0 + rank, "comm_wait_ms": 4.0, "busy_ms": 6.0 + rank,
            "fault_ms": 0.0, "ring_occupancy": 1, "retries": 0, "drops": 0,
            "delays": 0, "peak_rss_kb": 1000.0, "loss": 1.5}
    base.update(fields)
    return base


def make_summary(run_id="run-a", wall_ms=10.0, with_alert=False):
    coll = Collector()
    for rank in (0, 1):
        coll.ingest({"type": "meta", "rank": rank, "t": 0.0, "world": 2,
                     "sample_every": 1})
        for step in range(3):
            coll.ingest(step_event(rank, step, wall_ms=wall_ms + rank,
                                   fidelity={"boundary0": {
                                       "rel_l2": 0.1, "ratio": 4.0,
                                       "residual_norm": 2.0}}))
    monitor = HealthMonitor(coll, rules=[LossRule()])
    if with_alert:
        coll.observe(None, "loss", float("nan"))
    monitor.check(step=3)
    return build_summary(run_id, coll, monitor, meta={"scheme": "A2"})


class TestSchema:
    def test_build_summary_validates(self):
        doc = make_summary()
        assert doc["schema_version"] == 1
        assert doc["telemetry"]["ranks"] == [0, 1]
        assert validate_run(doc) is doc

    def test_missing_section_is_rejected(self):
        doc = make_summary()
        del doc["health"]
        with pytest.raises(RunSchemaError, match="health"):
            validate_run(doc)

    def test_unknown_top_level_key_is_rejected(self):
        doc = make_summary()
        doc["extra"] = 1
        with pytest.raises(RunSchemaError):
            validate_run(doc)

    def test_wrong_type_is_rejected(self):
        doc = make_summary()
        doc["telemetry"]["ranks"] = ["zero"]
        with pytest.raises(RunSchemaError):
            validate_run(doc)


class TestSaveLoadResolve:
    def test_roundtrip(self, tmp_path):
        registry = str(tmp_path / "runs")
        path = save_run(registry, make_summary("run-a"))
        assert path.endswith("run-a.run.json")
        assert load_run(path)["run_id"] == "run-a"

    def test_save_refuses_invalid_doc(self, tmp_path):
        doc = make_summary()
        del doc["meta"]
        with pytest.raises(RunSchemaError):
            save_run(str(tmp_path), doc)

    def test_load_refuses_corrupt_file(self, tmp_path):
        bad = tmp_path / "bad.run.json"
        bad.write_text(json.dumps({"run_id": "bad"}))
        with pytest.raises(RunSchemaError):
            load_run(str(bad))

    def test_list_and_resolve(self, tmp_path):
        registry = str(tmp_path / "runs")
        save_run(registry, make_summary("run-a"))
        save_run(registry, make_summary("run-b"))
        assert set(list_runs(registry)) == {"run-a", "run-b"}
        assert resolve_run(registry, "run-a").endswith("run-a.run.json")
        # A bare path outside the registry also resolves.
        direct = save_run(str(tmp_path / "elsewhere"), make_summary("run-c"))
        assert resolve_run(registry, direct) == direct

    def test_resolve_missing_names_known_runs(self, tmp_path):
        registry = str(tmp_path / "runs")
        save_run(registry, make_summary("run-a"))
        with pytest.raises(FileNotFoundError, match="run-a"):
            resolve_run(registry, "nope")


class TestDiff:
    def test_diff_table_is_nonempty_with_deltas(self):
        rows = diff_runs(make_summary("fast", wall_ms=10.0),
                         make_summary("slow", wall_ms=20.0))
        assert rows
        by_metric = {r["metric"]: r for r in rows}
        wall = by_metric["pooled/wall_ms/p50"]
        assert wall["fast"] == pytest.approx(10.5)
        assert wall["slow"] == pytest.approx(20.5)
        assert wall["delta"] == pytest.approx(10.0)
        assert wall["delta_pct"].startswith("+95")
        assert "health/alerts" in by_metric
        assert "fidelity/boundary0/rel_l2/mean" in by_metric

    def test_one_sided_metric_shows_empty_cell(self):
        doc_a = make_summary("a")
        doc_b = make_summary("b")
        doc_b["telemetry"]["pooled"]["extra_metric"] = {
            "count": 1, "window": 1, "last": 1.0, "mean": 1.0, "ewma": 1.0,
            "min": 1.0, "max": 1.0, "p50": 1.0, "p99": 1.0}
        rows = diff_runs(doc_a, doc_b)
        row = next(r for r in rows if r["metric"] == "pooled/extra_metric/p50")
        assert row["a"] == "" and row["b"] == 1.0
        assert row["delta"] == ""  # incomparable, not fake-zero

    def test_format_diff_renders_table(self):
        text = format_diff(make_summary("a"), make_summary("b"))
        assert "telemetry diff: a vs b" in text
        assert "pooled/wall_ms/p50" in text


class TestDashboards:
    def test_render_top_shows_ranks_and_alerts(self):
        coll = Collector()
        for rank in (0, 1):
            coll.ingest({"type": "meta", "rank": rank, "t": 0.0, "world": 2,
                         "sample_every": 1})
            coll.ingest(step_event(rank, 0))
        monitor = HealthMonitor(coll, rules=[LossRule()])
        coll.observe(None, "loss", float("nan"))
        monitor.check(step=0)
        frame = render_top(coll, monitor, step=0)
        assert "world=2" in frame
        assert "non-finite" in frame  # the alert text
        lines = [ln for ln in frame.splitlines() if ln.strip().startswith(("0", "1"))]
        assert len(lines) >= 2  # one row per rank

    def test_html_snapshot(self, tmp_path):
        doc = make_summary("html-run", with_alert=True)
        html = render_html(doc)
        assert "<html" in html and "html-run" in html
        assert "boundary0" in html
        out = tmp_path / "dash.html"
        assert write_html(str(out), doc) == str(out)
        assert "html-run" in out.read_text()
