"""Tests for the training loops, checkpointing, and the fine-tune API."""

import os

import numpy as np
import pytest

from repro import nn
from repro.data.pretraining import MLMCorpus
from repro.data.tasks import make_task
from repro.parallel import ModelParallelBertPreTraining, ModelParallelConfig
from repro.training import (
    FineTuneTrainer,
    PretrainConfig,
    TrainConfig,
    evaluate_task,
    load_checkpoint,
    run_pretraining,
    save_checkpoint,
)
from repro.training.finetune import default_accuracy_model, finetune_on_task


def tiny_config(**kw):
    defaults = dict(vocab_size=128, max_seq_len=32, hidden=32, num_layers=2,
                    num_heads=2, num_classes=2, seed=0, init_std=0.08)
    defaults.update(kw)
    return nn.TransformerConfig(**defaults)


class TestFineTuneTrainer:
    def test_loss_decreases_on_easy_task(self):
        train, _ = make_task("SST-2", seed=0, train_size=128)
        model = nn.BertForSequenceClassification(tiny_config())
        trainer = FineTuneTrainer(model, TrainConfig(epochs=4, lr=2e-3, seed=0))
        hist = trainer.train(train)
        assert np.mean(hist[-4:]) < np.mean(hist[:4]) * 0.9

    def test_history_length(self):
        train, _ = make_task("SST-2", seed=0, train_size=64)
        model = nn.BertForSequenceClassification(tiny_config())
        trainer = FineTuneTrainer(model, TrainConfig(epochs=2, batch_size=32, seed=0))
        hist = trainer.train(train)
        assert len(hist) == 2 * 2  # 2 epochs × ceil(64/32) steps

    def test_evaluate_uses_task_metric(self):
        _, evals = make_task("CoLA", seed=0)
        model = nn.BertForSequenceClassification(tiny_config())
        score = evaluate_task(model, evals["eval"])
        assert -100.0 <= score <= 100.0  # Matthews ×100

    def test_evaluate_regression(self):
        _, evals = make_task("STS-B", seed=0)
        model = nn.BertForSequenceClassification(tiny_config(), regression=True)
        score = evaluate_task(model, evals["eval"])
        assert -100.0 <= score <= 100.0


class TestPretraining:
    def test_mlm_loss_decreases(self):
        cfg = tiny_config()
        model = nn.BertForPreTraining(cfg)
        corpus = MLMCorpus(seq_len=16, seed=0)
        hist = run_pretraining(model, corpus, PretrainConfig(steps=40, batch_size=16))
        assert np.mean(hist[-8:]) < np.mean(hist[:8])

    def test_gradient_accumulation_matches_big_batch_loss_scale(self):
        """micro_batches>1 averages losses like one big batch."""
        cfg = tiny_config()
        model = nn.BertForPreTraining(cfg)
        corpus = MLMCorpus(seq_len=16, seed=0)
        hist = run_pretraining(
            model, corpus, PretrainConfig(steps=3, batch_size=8, micro_batches=4)
        )
        assert len(hist) == 3 and all(np.isfinite(h) for h in hist)

    def test_mp_pretraining_runs(self):
        cfg = default_accuracy_model(seed=0, num_layers=2)
        model = ModelParallelBertPreTraining(
            ModelParallelConfig(cfg, tp=2, pp=2, scheme="A2", seed=0)
        )
        corpus = MLMCorpus(seq_len=16, seed=0)
        hist = run_pretraining(model, corpus, PretrainConfig(steps=5, batch_size=8))
        assert len(hist) == 5
        state = model.backbone_state_dict()
        assert not any(k.startswith("compressor.") for k in state)


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        state = {"a.b": np.arange(6, dtype=np.float32).reshape(2, 3),
                 "c": np.ones(4)}
        path = os.path.join(tmp_path, "ckpt.npz")
        save_checkpoint(state, path)
        loaded = load_checkpoint(path)
        assert set(loaded) == {"a.b", "c"}
        np.testing.assert_array_equal(loaded["a.b"], state["a.b"])

    def test_backbone_transfer_improves_finetuning(self, tmp_path):
        """Pre-trained weights fine-tune better than random init (Table 8's
        premise), exercised end-to-end through save/load."""
        cfg = default_accuracy_model(seed=0, num_layers=2)
        model = ModelParallelBertPreTraining(ModelParallelConfig(cfg, tp=1, pp=1, seed=0))
        corpus = MLMCorpus(seq_len=16, seed=0)
        run_pretraining(model, corpus, PretrainConfig(steps=60, batch_size=32))
        path = os.path.join(tmp_path, "bb.npz")
        save_checkpoint(model.backbone_state_dict(), path)
        state = load_checkpoint(path)

        quick = TrainConfig(epochs=2, lr=1e-3, seed=0)
        warm = finetune_on_task("SST-2", "w/o", tp=1, pp=1, seed=0,
                                num_layers=2, backbone_state=state, train_config=quick)
        cold = finetune_on_task("SST-2", "w/o", tp=1, pp=1, seed=0,
                                num_layers=2, train_config=quick)
        assert warm.primary >= cold.primary - 5.0  # warm start at least comparable


class TestFinetuneAPI:
    def test_returns_scores_per_split(self):
        res = finetune_on_task("MNLI", "w/o", tp=1, pp=1, seed=0, num_layers=2,
                               train_config=TrainConfig(epochs=1, seed=0))
        assert set(res.scores) == {"m", "mm"}
        assert res.task == "MNLI"
        assert np.isfinite(res.primary)

    def test_compressed_run_has_ae_parameters(self):
        res = finetune_on_task("SST-2", "A2", tp=2, pp=2, seed=0, num_layers=4,
                               train_config=TrainConfig(epochs=1, seed=0))
        assert res.scheme == "A2"
