"""Bitwise mid-run recovery: a run killed at step k and resumed from the
step-k checkpoint finishes identical to an unkilled run, on both
backends.

The full trainer snapshot (model + optimizer moments + LR scheduler step
+ per-site compressor runtime state + data-order RNG) is what makes this
exact — ``==`` on losses and ``array_equal`` on weights, not allclose.
The R2 scheme is used deliberately: Random-K carries advancing per-site
RNG streams, so forgetting runtime state in the checkpoint breaks this
test where a stateless scheme would hide it.
"""

import json
import os

import numpy as np
import pytest

from repro.compression.error_feedback import ErrorFeedbackCompressor
from repro.compression.randomk import RandomKCompressor
from repro.compression.topk import TopKCompressor
from repro.data.tasks import make_task
from repro.nn.transformer import TransformerConfig
from repro.parallel.backend import BackendError, create_backend, faults
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig
from repro.training import FineTuneTrainer, TrainConfig
from repro.training.checkpoint import load_trainer_state, save_trainer_state

MP_TIMEOUT = 30.0


def make_model(backend="inproc", scheme="R2"):
    mc = TransformerConfig(vocab_size=128, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=32, dropout=0.0, num_classes=2, seed=0)
    cfg = ModelParallelConfig(model=mc, tp=2, pp=2, scheme=scheme, seed=0,
                              backend=backend)
    return ModelParallelBertClassifier(cfg)


def assert_same_weights(a, b):
    for (name, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert np.array_equal(pa.data, pb.data), f"weights diverged at {name}"


class TestInprocResume:
    @pytest.mark.parametrize("kill_at", [1, 3])
    def test_resume_is_bitwise_identical(self, tmp_path, kill_at):
        """Kill (via max_steps) mid-epoch and at an epoch boundary."""
        train, _ = make_task("SST-2", seed=0, train_size=32)
        tcfg = TrainConfig(epochs=2, batch_size=16, lr=2e-3, seed=0)
        ck = os.path.join(tmp_path, "ckpt")

        ref = FineTuneTrainer(make_model(), tcfg)
        hist_a = ref.train(train)  # 2 epochs x 2 steps

        killed = FineTuneTrainer(make_model(), tcfg)
        killed.train(train, checkpoint_path=ck, checkpoint_every=1,
                     max_steps=kill_at)

        resumed = FineTuneTrainer(make_model(), tcfg)
        hist_b = resumed.train(train, resume_from=ck)
        assert hist_b == hist_a[kill_at:]
        assert_same_weights(ref.model, resumed.model)

    def test_save_before_any_step_is_an_error(self, tmp_path):
        trainer = FineTuneTrainer(make_model(), TrainConfig(epochs=1, seed=0))
        with pytest.raises(RuntimeError, match="before any training step"):
            trainer.save_state(os.path.join(tmp_path, "ckpt"))


class TestMpKillAndResume:
    def test_injected_kill_then_resume_matches_unkilled_run(self, tmp_path):
        """The full chaos loop: fault-plan kill at step k, resume, compare."""
        train, _ = make_task("SST-2", seed=0, train_size=32)
        tcfg = TrainConfig(epochs=1, batch_size=16, lr=2e-3, seed=0)
        ck = os.path.join(tmp_path, "ckpt")
        kill_at = 1

        m_ref = make_model(backend="mp")
        b_ref = create_backend("mp", m_ref, timeout=MP_TIMEOUT)
        try:
            hist_a = FineTuneTrainer(m_ref, tcfg, backend=b_ref).train(train)
        finally:
            b_ref.close()

        plan = json.dumps({"faults": [
            {"kind": "kill", "rank": 3, "step": kill_at}]})
        saved = os.environ.get(faults.ENV_VAR)
        os.environ[faults.ENV_VAR] = plan
        try:
            m_killed = make_model(backend="mp")
            b_killed = create_backend("mp", m_killed, timeout=MP_TIMEOUT)
            try:
                with pytest.raises(BackendError) as err:
                    FineTuneTrainer(m_killed, tcfg, backend=b_killed).train(
                        train, checkpoint_path=ck, checkpoint_every=1)
                assert err.value.rank == 3
            finally:
                b_killed.close()
        finally:
            if saved is None:
                os.environ.pop(faults.ENV_VAR, None)
            else:
                os.environ[faults.ENV_VAR] = saved

        m_res = make_model(backend="mp")
        b_res = create_backend("mp", m_res, timeout=MP_TIMEOUT)
        try:
            hist_b = FineTuneTrainer(m_res, tcfg, backend=b_res).train(
                train, resume_from=ck)
        finally:
            b_res.close()
        assert hist_b == hist_a[kill_at:]
        assert_same_weights(m_ref, m_res)

    def test_mp_checkpoint_resumes_on_inproc_backend(self, tmp_path):
        """Snapshots are backend-portable: runtime state rides the file."""
        train, _ = make_task("SST-2", seed=0, train_size=32)
        tcfg = TrainConfig(epochs=1, batch_size=16, lr=2e-3, seed=0)
        ck = os.path.join(tmp_path, "ckpt")

        ref = FineTuneTrainer(make_model(), tcfg)
        hist_a = ref.train(train)

        m_mp = make_model(backend="mp")
        b_mp = create_backend("mp", m_mp, timeout=MP_TIMEOUT)
        try:
            FineTuneTrainer(m_mp, tcfg, backend=b_mp).train(
                train, checkpoint_path=ck, checkpoint_every=1, max_steps=1)
        finally:
            b_mp.close()

        resumed = FineTuneTrainer(make_model(), tcfg)
        hist_b = resumed.train(train, resume_from=ck)
        assert hist_b == hist_a[1:]
        assert_same_weights(ref.model, resumed.model)


class TestRuntimeStateUnits:
    def test_error_feedback_residuals_round_trip(self):
        """EF residuals are per-site state a resume must carry over."""
        ef = ErrorFeedbackCompressor(TopKCompressor(fraction=0.5))
        rng = np.random.default_rng(0)
        for site in ("layer0.attn", "layer1.mlp"):
            ef.compress(rng.normal(size=(4, 8)).astype(np.float32), site=site)
        state = ef.runtime_state()
        assert set(state["residuals"]) == {"layer0.attn", "layer1.mlp"}

        fresh = ErrorFeedbackCompressor(TopKCompressor(fraction=0.5))
        fresh.load_runtime_state(state)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        a = ef.compress(x, site="layer0.attn")
        b = fresh.compress(x, site="layer0.attn")
        np.testing.assert_array_equal(ef.decompress(a), fresh.decompress(b))

    def test_randomk_stream_round_trip(self):
        """Random-K selection streams advance per call; a fresh instance
        without the saved state would redraw the first selection."""
        rk = RandomKCompressor(fraction=0.5, seed=0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(8, 8)).astype(np.float32)
        rk.compress(x)  # advance the default site stream
        state = rk.runtime_state()
        assert "default" in state["rng"]

        fresh = RandomKCompressor(fraction=0.5, seed=0)
        fresh.load_runtime_state(state)
        a = rk.compress(x)
        b = fresh.compress(x)
        np.testing.assert_array_equal(a.payloads["indices"],
                                      b.payloads["indices"])
        np.testing.assert_array_equal(a.payloads["values"],
                                      b.payloads["values"])
        # ...whereas a truly fresh stream draws the *first* selection again.
        naive = RandomKCompressor(fraction=0.5, seed=0)
        assert not np.array_equal(naive.compress(x).payloads["indices"],
                                  a.payloads["indices"])

    def test_trainer_snapshot_preserves_runtime_state(self, tmp_path):
        path = os.path.join(tmp_path, "snap")
        runtime = {"layer0.attn": {"rng": {"state": 123}},
                   "boundary0": {"residuals": {"site": np.ones(3)}}}
        save_trainer_state(
            path,
            model_state={"w": np.arange(4, dtype=np.float32)},
            optimizer_state={"step_count": 2, "lr": 0.1, "slots": {}},
            schedule_state={"step": 2},
            data_rng_state={"bit_generator": "PCG64", "state": {"state": 1}},
            runtime_state=runtime,
            global_step=2, epoch=0, step_in_epoch=2,
        )
        state = load_trainer_state(path)
        assert state.global_step == 2 and state.step_in_epoch == 2
        assert state.runtime_state["layer0.attn"] == {"rng": {"state": 123}}
        np.testing.assert_array_equal(
            state.runtime_state["boundary0"]["residuals"]["site"], np.ones(3))
