"""Regression tests for state-corrupting edge cases in the training stack."""

import os

import numpy as np
import pytest

from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.finetune import finetune_on_task
from repro.training.trainer import TrainConfig


class TestCheckpointSuffix:
    """np.savez silently appends ``.npz`` to suffix-less paths; save and load
    must normalize identically or a bare-path round-trip raises."""

    def test_roundtrip_without_npz_suffix(self, tmp_path):
        state = {"layer.w": np.arange(6, dtype=np.float32).reshape(2, 3)}
        path = os.path.join(tmp_path, "ckpt")  # no .npz
        save_checkpoint(state, path)
        loaded = load_checkpoint(path)  # same bare path back
        np.testing.assert_array_equal(loaded["layer.w"], state["layer.w"])

    def test_bare_save_loadable_with_explicit_suffix(self, tmp_path):
        state = {"b": np.ones(4, dtype=np.float32)}
        path = os.path.join(tmp_path, "model")
        save_checkpoint(state, path)
        loaded = load_checkpoint(path + ".npz")
        np.testing.assert_array_equal(loaded["b"], state["b"])

    def test_suffixed_path_still_works(self, tmp_path):
        state = {"x": np.zeros(2, dtype=np.float32)}
        path = os.path.join(tmp_path, "full.npz")
        save_checkpoint(state, path)
        assert os.path.exists(path)  # no double suffix
        assert set(load_checkpoint(path)) == {"x"}

    def test_missing_checkpoint_still_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(os.path.join(tmp_path, "absent"))


class TestRegressionTaskEvaluation:
    def test_stsb_finetune_evaluates_with_spearman(self):
        """STS-B is the regression task: a 1-output head scored by Spearman
        correlation must flow through evaluate_task without the
        classification argmax path mangling it."""
        res = finetune_on_task(
            "STS-B", "w/o", tp=1, pp=1, seed=0, num_layers=2,
            train_config=TrainConfig(epochs=1, lr=1e-3, seed=0, batch_size=64),
        )
        assert res.task == "STS-B"
        assert res.scores, "STS-B must produce at least one eval split score"
        for score in res.scores.values():
            assert np.isfinite(score)
            assert -100.0 <= score <= 100.0  # Spearman ×100
