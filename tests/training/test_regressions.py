"""Regression tests for state-corrupting edge cases in the training stack."""

import os

import numpy as np
import pytest

from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.finetune import finetune_on_task
from repro.training.trainer import TrainConfig


class TestCheckpointSuffix:
    """np.savez silently appends ``.npz`` to suffix-less paths; save and load
    must normalize identically or a bare-path round-trip raises."""

    def test_roundtrip_without_npz_suffix(self, tmp_path):
        state = {"layer.w": np.arange(6, dtype=np.float32).reshape(2, 3)}
        path = os.path.join(tmp_path, "ckpt")  # no .npz
        save_checkpoint(state, path)
        loaded = load_checkpoint(path)  # same bare path back
        np.testing.assert_array_equal(loaded["layer.w"], state["layer.w"])

    def test_bare_save_loadable_with_explicit_suffix(self, tmp_path):
        state = {"b": np.ones(4, dtype=np.float32)}
        path = os.path.join(tmp_path, "model")
        save_checkpoint(state, path)
        loaded = load_checkpoint(path + ".npz")
        np.testing.assert_array_equal(loaded["b"], state["b"])

    def test_suffixed_path_still_works(self, tmp_path):
        state = {"x": np.zeros(2, dtype=np.float32)}
        path = os.path.join(tmp_path, "full.npz")
        save_checkpoint(state, path)
        assert os.path.exists(path)  # no double suffix
        assert set(load_checkpoint(path)) == {"x"}

    def test_missing_checkpoint_still_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(os.path.join(tmp_path, "absent"))

    def test_sibling_directory_cannot_shadow_checkpoint(self, tmp_path):
        """A directory named like the bare path must not shadow ckpt.npz.

        ``load_checkpoint`` used ``os.path.exists`` on the bare path, so a
        ``ckpt/`` directory next to ``ckpt.npz`` sent ``np.load`` straight
        into IsADirectoryError; only a *file* may short-circuit the
        suffix normalization.
        """
        state = {"w": np.arange(4, dtype=np.float32)}
        path = os.path.join(tmp_path, "ckpt")
        save_checkpoint(state, path)  # writes ckpt.npz
        os.mkdir(path)  # the shadowing directory
        loaded = load_checkpoint(path)
        np.testing.assert_array_equal(loaded["w"], state["w"])


class TestCheckpointEdgeCases:
    """Round-trips that exercise the npz serialization corners."""

    @pytest.mark.parametrize("dtype", ["int8", "uint16", "int32", "int64",
                                       "bool", "float16"])
    def test_non_float_dtypes_round_trip(self, tmp_path, dtype):
        arr = (np.arange(12) % 2).astype(dtype).reshape(3, 4)
        path = os.path.join(tmp_path, "ckpt")
        save_checkpoint({"t": arr}, path)
        out = load_checkpoint(path)["t"]
        assert out.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(out, arr)

    def test_zero_d_arrays_round_trip(self, tmp_path):
        state = {"scalar": np.float32(3.5) * np.ones(()),
                 "count": np.array(7, dtype=np.int64)}
        path = os.path.join(tmp_path, "ckpt")
        save_checkpoint(state, path)
        out = load_checkpoint(path)
        assert out["scalar"].shape == () and out["scalar"] == np.float32(3.5)
        assert out["count"].shape == () and out["count"] == 7

    def test_empty_state_dict_round_trips(self, tmp_path):
        path = os.path.join(tmp_path, "empty")
        save_checkpoint({}, path)
        assert load_checkpoint(path) == {}

    def test_bare_relative_path_has_no_directory_component(self, tmp_path,
                                                           monkeypatch):
        """save_checkpoint('ckpt') must not trip on dirname('') == ''."""
        monkeypatch.chdir(tmp_path)
        state = {"w": np.ones(3, dtype=np.float32)}
        save_checkpoint(state, "ckpt")
        np.testing.assert_array_equal(load_checkpoint("ckpt")["w"], state["w"])

    def test_parent_directories_are_created(self, tmp_path):
        path = os.path.join(tmp_path, "a", "b", "ckpt")
        save_checkpoint({"w": np.zeros(2, dtype=np.float32)}, path)
        assert set(load_checkpoint(path)) == {"w"}


class TestRegressionTaskEvaluation:
    def test_stsb_finetune_evaluates_with_spearman(self):
        """STS-B is the regression task: a 1-output head scored by Spearman
        correlation must flow through evaluate_task without the
        classification argmax path mangling it."""
        res = finetune_on_task(
            "STS-B", "w/o", tp=1, pp=1, seed=0, num_layers=2,
            train_config=TrainConfig(epochs=1, lr=1e-3, seed=0, batch_size=64),
        )
        assert res.task == "STS-B"
        assert res.scores, "STS-B must produce at least one eval split score"
        for score in res.scores.values():
            assert np.isfinite(score)
            assert -100.0 <= score <= 100.0  # Spearman ×100
