"""Tests for the §4.7 analytical model, fitting, and Eq. (3) scaling."""

import numpy as np
import pytest

from repro.parallel.topology import LinkType
from repro.perfmodel import (
    AnalyticalModel,
    MEGATRON_WEAK_SCALING,
    PerfModelParams,
    cluster_speedup,
    fit_alpha,
    fit_comm_piecewise,
    fit_from_simulator,
    fit_gamma,
    transformer_layer_flops,
    weak_scaling_table,
)

PARAMS = PerfModelParams(
    alpha=4e-12, beta=3e-6, comm_threshold_elems=409600, comm_const_ms=0.2,
    gamma=2.5e-8,
)


def model(e=100):
    return AnalyticalModel(PARAMS, encoder_dim=e)


class TestAnalyticalModel:
    def test_flops_formula(self):
        assert transformer_layer_flops(1, 1, 1) == 96 + 16
        assert transformer_layer_flops(16, 128, 1024) == (
            96 * 16 * 128 * 1024**2 + 16 * 16 * 128**2 * 1024
        )

    def test_tcomm_piecewise(self):
        m = model()
        assert m.t_comm(1000) == PARAMS.comm_const_ms
        assert m.t_comm(1_000_000) == pytest.approx(3e-6 * 1_000_000)

    def test_ae_comm_usually_constant(self):
        """B·s·e is below the threshold in the paper's regime."""
        m = model()
        assert m.t_comm(16 * 128 * 100) == PARAMS.comm_const_ms

    def test_layer_time_decomposition(self):
        m = model()
        t = m.layer_time(16, 128, 1024)
        assert t == pytest.approx(m.t_comp(16, 128, 1024) + m.t_comm(16 * 128 * 1024))

    def test_speedup_above_one_when_comm_matters(self):
        assert model().speedup(16, 128, 2048) > 1.0

    def test_speedup_diminishes_with_hidden(self):
        """Eq. (2): as h grows on a fixed cluster, benefit → 1."""
        m = model()
        sp = [m.speedup(16, 128, h) for h in (2048, 4096, 8192, 16384, 32768)]
        assert sp == sorted(sp, reverse=True)
        assert sp[-1] < sp[0]
        assert sp[-1] > 1.0


class TestFitting:
    def test_fit_alpha_uses_largest(self):
        hiddens = [512, 1024, 2048]
        times = [1.0, 2.0, 40.0]
        a = fit_alpha(hiddens, times, 16, 128)
        assert a == pytest.approx(40.0 / transformer_layer_flops(16, 128, 2048))

    def test_fit_alpha_validation(self):
        with pytest.raises(ValueError):
            fit_alpha([], [], 16, 128)
        with pytest.raises(ValueError):
            fit_alpha([1, 2], [1.0], 16, 128)

    def test_fit_comm_recovers_known_piecewise(self):
        beta_true, c_true, d_true = 2e-6, 0.2, 500_000
        elems = np.array([1e4, 1e5, 3e5, 1e6, 3e6, 1e7])
        times = np.where(elems < d_true, c_true, beta_true * elems)
        beta, c, d = fit_comm_piecewise(elems, times)
        assert beta == pytest.approx(beta_true, rel=0.05)
        assert c == pytest.approx(c_true)
        assert d <= d_true

    def test_fit_comm_flat_everywhere(self):
        beta, c, d = fit_comm_piecewise([1e3, 1e4, 1e5], [0.2, 0.2, 0.2])
        assert beta == 0.0 and c == 0.2

    def test_fit_comm_needs_three(self):
        with pytest.raises(ValueError):
            fit_comm_piecewise([1, 2], [0.1, 0.2])

    def test_fit_gamma_least_squares(self):
        elems = np.array([1e5, 1e6, 1e7])
        g = fit_gamma(elems, 3e-8 * elems)
        assert g == pytest.approx(3e-8)

    def test_fit_from_simulator_paper_constants(self):
        """c and d land near the paper's quoted values (§4.7)."""
        params, curves = fit_from_simulator(link=LinkType.ETHERNET)
        assert params.comm_const_ms == pytest.approx(0.2, rel=0.05)
        # paper: d = 409 600 elements; ours within ~2×
        assert 100_000 < params.comm_threshold_elems < 900_000
        assert len(curves["hiddens"]) == len(curves["comp_ms"])


class TestClusterScaling:
    def test_eq3_reduces_to_layer_ratio_on_one_node(self):
        m = model()
        s = cluster_speedup(m, 4096, 24, 1, 16, 8, 128, 4e6)
        expected = m.layer_time(16, 128, 4096) / m.layer_time_ae(16, 128, 4096)
        assert s == pytest.approx(expected)

    def test_eq3_pipeline_term_favors_ae(self):
        """More nodes → dense pipeline sends hurt the baseline more."""
        m = model()
        s1 = cluster_speedup(m, 4096, 24, 1, 16, 64, 128, 4e6)
        s8 = cluster_speedup(m, 4096, 24, 8, 16, 64, 128, 4e6)
        assert s8 > s1

    def test_eq3_validation(self):
        with pytest.raises(ValueError):
            cluster_speedup(model(), 4096, 24, 0, 16, 8, 128, 4e6)

    def test_weak_scaling_table_shape(self):
        rows = weak_scaling_table(model())
        assert len(rows) == len(MEGATRON_WEAK_SCALING)
        speedups = [r["speedup"] for r in rows]
        # Table 10's shape: monotone decline that stays well above 1.
        assert speedups == sorted(speedups, reverse=True)
        assert all(s > 1.0 for s in speedups)

    def test_weak_scaling_configs_match_paper(self):
        assert MEGATRON_WEAK_SCALING[0].hidden == 6144
        assert MEGATRON_WEAK_SCALING[-1] .hidden == 25600
        assert MEGATRON_WEAK_SCALING[-1].num_nodes == 64
