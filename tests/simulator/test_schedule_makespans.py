"""Closed-form 1F1B schedule timing vs GPipe in the iteration simulator.

Non-interleaved 1F1B keeps GPipe's makespan — ``(m+pp−1)(tf+tb)`` with
uniform stage times — while overlapping ``(m−1)(tf+tb)`` of forward and
backward wall time.  These tests pin the closed forms and check that the
per-op start times the trace renderer uses are a *feasible* schedule:
no local overlap on a stage, every forward waits for its upstream
forward, every backward for its downstream backward.
"""

import pytest

from repro.parallel.topology import ClusterTopology, LinkType
from repro.simulator.iteration import IterationSimulator, SimSetting


def sim_for(tp=1, pp=4, m=8, scheme="w/o", schedule="1f1b"):
    topo = ClusterTopology(1, tp * pp, LinkType.PCIE)
    return IterationSimulator(SimSetting(topo, tp, pp, 32, 512,
                                         num_microbatches=m, scheme=scheme,
                                         schedule=schedule))


class TestMakespans:
    @pytest.mark.parametrize("pp,m", [(2, 1), (2, 4), (4, 2), (4, 8)])
    def test_1f1b_keeps_gpipe_iteration_makespan(self, pp, m):
        g = sim_for(pp=pp, m=m, schedule="gpipe")
        f = sim_for(pp=pp, m=m, schedule="1f1b")
        tf, tb = g.stage_compute_ms()
        slots = m + pp - 1
        gf, gb, go = g.compute_makespans()
        ff, fb, fo = f.compute_makespans()
        assert go == 0.0
        assert gf + gb == pytest.approx(slots * (tf + tb))
        # 1F1B: same end-to-end wall time, overlap accounts for the rest.
        assert ff + fb - fo == pytest.approx(slots * (tf + tb))
        assert fo == pytest.approx((m - 1) * (tf + tb))

    def test_m1_schedules_coincide(self):
        g = sim_for(m=1, schedule="gpipe")
        f = sim_for(m=1, schedule="1f1b")
        assert g.compute_makespans() == f.compute_makespans()
        assert g.breakdown() == f.breakdown()

    @pytest.mark.parametrize("scheme", ["w/o", "T2", "A2"])
    def test_total_ms_identical_across_schedules(self, scheme):
        g = sim_for(tp=2, pp=2, m=4, scheme=scheme, schedule="gpipe")
        f = sim_for(tp=2, pp=2, m=4, scheme=scheme, schedule="1f1b")
        assert f.breakdown().total_ms == pytest.approx(g.breakdown().total_ms)
        # Comm/enc/dec columns are per-iteration sums — schedule-blind.
        assert f.breakdown().tensor_comm_ms == g.breakdown().tensor_comm_ms
        assert f.breakdown().encode_ms == g.breakdown().encode_ms
        assert f.breakdown().pipeline_ms == g.breakdown().pipeline_ms

    def test_overlap_subtracted_once_from_total(self):
        b = sim_for(pp=2, m=4).breakdown()
        assert b.overlap_ms > 0
        assert b.total_ms == pytest.approx(
            b.forward_ms + b.backward_ms + b.optimizer_ms + b.pipeline_ms
            - b.overlap_ms)

    def test_unknown_schedule_rejected(self):
        topo = ClusterTopology(1, 2, LinkType.PCIE)
        with pytest.raises(ValueError, match="unknown pipeline schedule"):
            SimSetting(topo, 1, 2, 32, 512, schedule="zigzag")


class TestOpStartFeasibility:
    @pytest.mark.parametrize("schedule", ["gpipe", "1f1b"])
    @pytest.mark.parametrize("pp,m", [(2, 4), (4, 2), (4, 8)])
    def test_starts_form_a_feasible_schedule(self, schedule, pp, m):
        sim = sim_for(pp=pp, m=m, schedule=schedule)
        tf, tb = sim.stage_compute_ms()
        eps = 1e-9
        starts = [sim.stage_op_starts(st) for st in range(pp)]
        for st in range(pp):
            f, b = starts[st]
            # A stage is one executor: its ops must not overlap locally.
            ops = sorted([(t, tf) for t in f] + [(t, tb) for t in b])
            for (t0, d0), (t1, _) in zip(ops, ops[1:]):
                assert t1 >= t0 + d0 - eps
            for i in range(m):
                if st > 0:  # forward needs the upstream activation
                    assert f[i] >= starts[st - 1][0][i] + tf - eps
                if st < pp - 1:  # backward needs the downstream gradient
                    assert b[i] >= starts[st + 1][1][i] + tb - eps
                assert b[i] >= f[i] + tf - eps  # own forward first

    def test_1f1b_backward_starts_earlier_than_gpipe(self):
        g = sim_for(pp=4, m=8, schedule="gpipe")
        f = sim_for(pp=4, m=8, schedule="1f1b")
        # The last stage kicks off B0 right after F0 under 1F1B instead of
        # waiting for the full forward region to drain.
        assert f.stage_op_starts(3)[1][0] < g.stage_op_starts(3)[1][0]
