"""Unit tests for the communication cost models."""

import pytest

from repro.parallel.topology import LinkType
from repro.simulator.calibration import CALIBRATION
from repro.simulator.comm import (
    allgather_time,
    allreduce_multinode_time,
    allreduce_time,
    link_of,
    p2p_time,
)
from repro.simulator.hardware import LINKS, LinkSpec

MB = 1024 * 1024


class TestAllReduce:
    def test_world_one_is_free(self):
        assert allreduce_time(100 * MB, 1, LinkType.NVLINK) == 0.0

    def test_small_message_constant(self):
        t = allreduce_time(1000, 4, LinkType.NVLINK)
        assert t == CALIBRATION.small_message_ms

    def test_scales_linearly_with_bytes(self):
        t1 = allreduce_time(32 * MB, 2, LinkType.PCIE)
        t2 = allreduce_time(64 * MB, 2, LinkType.PCIE)
        assert t2 == pytest.approx(2 * t1, rel=0.05)

    def test_ring_factor(self):
        """Wire bytes follow 2(p−1)/p on a non-scaling fabric."""
        t2 = allreduce_time(32 * MB, 2, LinkType.PCIE)
        t4 = allreduce_time(32 * MB, 4, LinkType.PCIE)
        # 2·(3/4) / (2·(1/2)) = 1.5, modulo latency terms
        assert t4 / t2 == pytest.approx(1.5, rel=0.05)

    def test_nvlink_concurrency_keeps_p4_cheap(self):
        """On fully-connected NVLink, p=4 costs less than 1.5× p=2."""
        t2 = allreduce_time(32 * MB, 2, LinkType.NVLINK)
        t4 = allreduce_time(32 * MB, 4, LinkType.NVLINK)
        assert t4 < t2

    def test_paper_table4_calibration(self):
        """48 forward collectives of 32 MB ≈ 150 ms on the PCIe box."""
        per = allreduce_time(32 * 512 * 1024 * 2, 2, LinkType.PCIE)
        assert 48 * per == pytest.approx(150.72, rel=0.15)


class TestAllGather:
    def test_moves_world_minus_one_messages(self):
        t2 = allgather_time(8 * MB, 2, LinkType.PCIE)
        t4 = allgather_time(8 * MB, 4, LinkType.PCIE)
        assert t4 / t2 == pytest.approx(3.0, rel=0.1)

    def test_world_one_free(self):
        assert allgather_time(8 * MB, 1, LinkType.PCIE) == 0.0

    def test_small_total_constant(self):
        assert allgather_time(1000, 2, LinkType.PCIE) == CALIBRATION.small_message_ms


class TestP2P:
    def test_uses_p2p_bandwidth(self):
        eth = LINKS[LinkType.ETHERNET]
        t = p2p_time(8 * MB, LinkType.ETHERNET)
        expected = 8 * MB / (eth.p2p_gbps * 1e9) * 1e3 + eth.latency_s * 1e3
        assert t == pytest.approx(expected)

    def test_ethernet_p2p_faster_than_its_collectives(self):
        assert LINKS[LinkType.ETHERNET].p2p_gbps > LINKS[LinkType.ETHERNET].bandwidth_gbps

    def test_small_message_floor(self):
        assert p2p_time(100, LinkType.NVLINK) == CALIBRATION.small_message_ms


class TestMultinode:
    def test_within_node_delegates(self):
        t = allreduce_multinode_time(32 * MB, 4, 4, LinkType.NVLINK, LinkType.ETHERNET)
        assert t == allreduce_time(32 * MB, 4, LinkType.NVLINK)

    def test_spanning_nodes_adds_inter_phase(self):
        t_in = allreduce_multinode_time(32 * MB, 4, 4, LinkType.NVLINK, LinkType.ETHERNET)
        t_span = allreduce_multinode_time(32 * MB, 8, 4, LinkType.NVLINK, LinkType.ETHERNET)
        assert t_span > 10 * t_in  # Ethernet phase dominates

    def test_hierarchical_beats_flat_ethernet(self):
        flat = allreduce_time(32 * MB, 8, LinkType.ETHERNET)
        hier = allreduce_multinode_time(32 * MB, 8, 4, LinkType.NVLINK, LinkType.ETHERNET)
        assert hier < flat

    def test_link_of_passthrough(self):
        spec = LinkSpec("x", 1.0, 1e-6)
        assert link_of(spec) is spec
        assert link_of(LinkType.NVLINK) is LINKS[LinkType.NVLINK]
