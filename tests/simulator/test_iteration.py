"""Tests for the iteration simulator: composition rules and paper anchors."""

import pytest

from repro.compression import CompressionPolicy
from repro.parallel.topology import ClusterTopology
from repro.simulator import IterationSimulator, SimSetting


def aws(nodes=1):
    return ClusterTopology.p3_8xlarge(nodes)


class TestSimSetting:
    def test_policy_defaults(self):
        s = SimSetting(aws(), 2, 2, 32, 512)
        assert s.policy.num_compressed == 0
        s2 = SimSetting(aws(), 2, 2, 32, 512, scheme="A1")
        assert s2.policy.num_compressed == 12  # last half of 24

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            SimSetting(aws(), 3, 2, 32, 512)

    def test_invalid_microbatches(self):
        with pytest.raises(ValueError):
            SimSetting(aws(), 2, 2, 32, 512, num_microbatches=0)


class TestComposition:
    def test_total_is_sum_of_columns(self):
        b = IterationSimulator(SimSetting(aws(), 2, 2, 32, 512, scheme="A1")).breakdown()
        assert b.total_ms == pytest.approx(
            b.forward_ms + b.backward_ms + b.optimizer_ms + b.pipeline_ms
        )

    def test_tp1_has_no_tensor_comm(self):
        b = IterationSimulator(SimSetting(aws(), 1, 4, 32, 512)).breakdown()
        assert b.tensor_comm_ms == 0.0

    def test_pp1_has_no_pipeline_time(self):
        b = IterationSimulator(SimSetting(aws(), 4, 1, 32, 512)).breakdown()
        assert b.pipeline_ms == 0.0

    def test_uncompressed_has_no_encdec(self):
        b = IterationSimulator(SimSetting(aws(), 2, 2, 32, 512)).breakdown()
        assert b.encode_ms == 0.0 and b.decode_ms == 0.0

    def test_compression_reduces_forward_comm(self):
        wo = IterationSimulator(SimSetting(aws(), 4, 1, 32, 512)).breakdown()
        a1 = IterationSimulator(SimSetting(aws(), 4, 1, 32, 512, scheme="A1")).breakdown()
        assert a1.tensor_comm_ms < wo.tensor_comm_ms

    def test_backward_comm_unchanged_by_compression(self):
        """f all-reduces stay dense: backward within AE's extra GEMM cost."""
        wo = IterationSimulator(SimSetting(aws(), 4, 1, 32, 512)).breakdown()
        t1 = IterationSimulator(SimSetting(aws(), 4, 1, 32, 512, scheme="T1")).breakdown()
        assert t1.backward_ms == pytest.approx(wo.backward_ms)

    def test_policy_scales_encode_cost(self):
        half = IterationSimulator(SimSetting(aws(), 4, 1, 32, 512, scheme="T1")).breakdown()
        full = IterationSimulator(
            SimSetting(aws(), 4, 1, 32, 512, scheme="T1",
                       policy=CompressionPolicy.all(24))
        ).breakdown()
        assert full.encode_ms == pytest.approx(2 * half.encode_ms, rel=0.01)

    def test_more_microbatches_amortize_bubble(self):
        """Per-sample time falls as m grows (bubble fraction shrinks)."""
        t1 = IterationSimulator(SimSetting(aws(4), 4, 4, 16, 128, num_microbatches=1)).total_ms()
        t8 = IterationSimulator(SimSetting(aws(4), 4, 4, 16, 128, num_microbatches=8)).total_ms()
        assert t8 / 8 < t1

    def test_quant_backward_boundary_dense(self):
        sim = IterationSimulator(SimSetting(aws(4), 4, 4, 128, 128, scheme="Q2",
                                            num_microbatches=8))
        fwd, bwd = sim.boundary_send_ms(1)  # a compressed boundary
        assert bwd > fwd  # backward carries the dense gradient + staging


class TestPaperAnchors:
    """Totals must land near the paper's w/o rows (±12%)."""

    @pytest.mark.parametrize("tp,pp,expected", [(1, 4, 591.96), (2, 2, 440.71), (4, 1, 261.48)])
    def test_table2_baseline(self, tp, pp, expected):
        t = IterationSimulator(SimSetting(aws(), tp, pp, 32, 512)).total_ms()
        assert t == pytest.approx(expected, rel=0.12)

    def test_table4_baseline_total(self):
        t = IterationSimulator(
            SimSetting(ClusterTopology.local_pcie(), 2, 2, 32, 512)
        ).total_ms()
        assert t == pytest.approx(646.14, rel=0.15)

    @pytest.mark.parametrize("tp,pp,expected", [(2, 8, 1625.16), (4, 4, 1422.40), (8, 2, 15642.30)])
    def test_table6_baseline(self, tp, pp, expected):
        t = IterationSimulator(
            SimSetting(aws(4), tp, pp, 128, 128, num_microbatches=8)
        ).total_ms()
        assert t == pytest.approx(expected, rel=0.15)

    def test_table2_scheme_ordering(self):
        """NVLink TP4: w/o ≲ A1 < T1 < T4 ≪ R1."""
        times = {
            s: IterationSimulator(SimSetting(aws(), 4, 1, 32, 512, scheme=s)).total_ms()
            for s in ["w/o", "A1", "T1", "T4", "R1"]
        }
        assert times["w/o"] <= times["A1"] * 1.02
        assert times["A1"] < times["T1"] < times["T4"] < times["R1"]

    def test_table6_ae_wins_pretraining(self):
        wo = IterationSimulator(SimSetting(aws(4), 4, 4, 128, 128, num_microbatches=8)).total_ms()
        a2 = IterationSimulator(SimSetting(aws(4), 4, 4, 128, 128, num_microbatches=8,
                                           scheme="A2")).total_ms()
        assert a2 < wo * 0.92
