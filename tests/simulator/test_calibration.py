"""Calibration persistence and the Fig. 5 fit-quality sanity check."""

import dataclasses

import pytest

from repro.perfmodel.fitting import fit_from_simulator
from repro.simulator.calibration import CALIBRATION, Calibration


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        cal = Calibration()
        assert Calibration.from_dict(cal.to_dict()) == cal

    def test_save_load_through_json(self, tmp_path):
        path = str(tmp_path / "calibration.json")
        CALIBRATION.save(path)
        loaded = Calibration.load(path)
        assert loaded == CALIBRATION
        # int keys survive the JSON string round trip
        assert loaded.gemm_tflops_by_tp == CALIBRATION.gemm_tflops_by_tp
        assert all(isinstance(k, int) for k in loaded.gemm_tflops_by_tp)

    def test_modified_constant_round_trips(self, tmp_path):
        cal = dataclasses.replace(Calibration(), backward_ratio=2.5,
                                  optimizer_ms=7.0)
        path = str(tmp_path / "refit.json")
        cal.save(path)
        loaded = Calibration.load(path)
        assert loaded.backward_ratio == 2.5 and loaded.optimizer_ms == 7.0
        assert loaded != CALIBRATION

    def test_unknown_field_rejected(self):
        data = Calibration().to_dict()
        data["warp_speed"] = 9.0
        with pytest.raises(ValueError, match="warp_speed"):
            Calibration.from_dict(data)

    def test_gemm_tflops_nearest_lookup_survives_round_trip(self, tmp_path):
        path = str(tmp_path / "cal.json")
        CALIBRATION.save(path)
        loaded = Calibration.load(path)
        for tp in (1, 2, 3, 4, 8, 16):
            assert loaded.gemm_tflops(tp) == CALIBRATION.gemm_tflops(tp)


class TestFitQuality:
    """The committed constants must still support a sane Fig. 5 fit."""

    @pytest.fixture(scope="class")
    def fit(self):
        return fit_from_simulator(hiddens=(256, 512, 1024, 2048))

    def test_fitted_params_positive(self, fit):
        params, _ = fit
        assert params.alpha > 0 and params.beta > 0 and params.gamma > 0
        assert params.comm_const_ms > 0 and params.comm_threshold_elems > 0

    def test_compute_prediction_tracks_measurement_at_large_h(self, fit):
        params, curves = fit
        # alpha is fit at the largest hidden size (the paper's procedure);
        # prediction = alpha * layer FLOPs must land within 50% there.
        from repro.perfmodel.fitting import transformer_layer_flops

        h = curves["hiddens"][-1]
        measured = curves["comp_ms"][-1]
        predicted = params.alpha * transformer_layer_flops(16, 128, h)
        assert abs(predicted - measured) < 0.5 * measured

    def test_overhead_linear_in_hidden(self, fit):
        _, curves = fit
        ratios = [o / h for o, h in zip(curves["overhead_ms"], curves["hiddens"])]
        assert max(ratios) / min(ratios) < 1.05  # gamma·B·s·h is linear in h

    def test_comm_curve_monotone_above_threshold(self, fit):
        params, curves = fit
        above = [c for h, c in zip(curves["hiddens"], curves["comm_ms"])
                 if 16 * 128 * h > params.comm_threshold_elems]
        assert above == sorted(above)
