"""Sensitivity/monotonicity properties of the simulator (hypothesis-style
checks in plain pytest: these are physical invariants the model must obey).
"""

import pytest

from repro.compression import CompressionPolicy
from repro.parallel.topology import ClusterTopology
from repro.simulator import IterationSimulator, SimSetting


def total(topology, tp, pp, batch, seq, **kw):
    return IterationSimulator(SimSetting(topology, tp, pp, batch, seq, **kw)).total_ms()


class TestMonotonicity:
    def test_time_increases_with_batch(self):
        topo = ClusterTopology.p3_8xlarge()
        times = [total(topo, 2, 2, b, 512) for b in (8, 16, 32, 64)]
        assert times == sorted(times)

    def test_time_increases_with_seq(self):
        topo = ClusterTopology.p3_8xlarge()
        times = [total(topo, 2, 2, 32, s) for s in (128, 256, 512)]
        assert times == sorted(times)

    def test_time_increases_with_microbatches(self):
        topo = ClusterTopology.p3_8xlarge(4)
        times = [total(topo, 4, 4, 64, 128, num_microbatches=m) for m in (1, 2, 4, 8)]
        assert times == sorted(times)

    def test_slower_link_never_faster(self):
        t_nv = total(ClusterTopology.p3_8xlarge(), 4, 1, 32, 512)
        t_pcie = total(ClusterTopology.local_pcie(), 4, 1, 32, 512)
        assert t_pcie > t_nv

    def test_more_compressed_layers_more_overhead(self):
        """Top-K: encode/decode overhead scales with the policy size."""
        topo = ClusterTopology.p3_8xlarge()
        times = [
            total(topo, 4, 1, 32, 512, scheme="T1",
                  policy=CompressionPolicy.last_k(24, k))
            for k in (6, 12, 24)
        ]
        assert times == sorted(times)

    def test_ae_benefit_grows_with_message_size_on_pcie(self):
        """Takeaway 8's mechanism: bigger b·s → more comm to save."""
        topo = ClusterTopology.local_pcie()
        speedups = []
        for b, s in [(8, 128), (32, 128), (32, 512)]:
            wo = total(topo, 4, 1, b, s)
            ae = total(topo, 4, 1, b, s, scheme="A2")
            speedups.append(wo / ae)
        assert speedups == sorted(speedups)
        assert speedups[0] < 1.02  # small setting: no benefit
        assert speedups[-1] > 1.05  # large setting: real benefit


class TestScalingLaws:
    def test_compute_quadratic_in_hidden(self):
        from repro.nn.transformer import TransformerConfig

        topo = ClusterTopology.p3_8xlarge()

        def compute_ms(h):
            cfg = TransformerConfig(vocab_size=1000, max_seq_len=512, hidden=h,
                                    num_layers=1, num_heads=h // 64)
            sim = IterationSimulator(SimSetting(topo, 4, 1, 16, 128, model=cfg))
            return sim.layer_forward_compute_ms()

        r = compute_ms(4096) / compute_ms(2048)
        assert r == pytest.approx(4.0, rel=0.15)  # 24Bsh² dominates

    def test_attention_term_matters_at_long_seq(self):
        from repro.simulator.kernels import layer_forward_flops

        short = layer_forward_flops(1, 128, 1024)
        long = layer_forward_flops(1, 4096, 1024)
        # Quadratic s² term: >2× the pure linear extrapolation at s=4096.
        assert long > (4096 / 128) * short * 1.3
