"""Unit tests for kernel cost models."""

import pytest

from repro.compression.notation import scheme_spec
from repro.simulator.calibration import CALIBRATION
from repro.simulator.kernels import (
    elementwise_time,
    encode_decode_time,
    gemm_time,
    layer_forward_flops,
)


class TestGemm:
    def test_layer_flops_formula(self):
        # 24Bsh² + 4Bs²h at B=32, s=512, h=1024
        expected = 24 * 32 * 512 * 1024**2 + 4 * 32 * 512**2 * 1024
        assert layer_forward_flops(32, 512, 1024) == expected

    def test_gemm_time_linear(self):
        assert gemm_time(2e12, 50.0) == pytest.approx(2 * gemm_time(1e12, 50.0))

    def test_zero_flops_free(self):
        assert gemm_time(0, 50.0) == 0.0

    def test_elementwise_scales_inverse_tp(self):
        t1 = elementwise_time(32, 512, 1024, 1)
        t2 = elementwise_time(32, 512, 1024, 2)
        assert t1 == pytest.approx(2 * t2)


class TestEncodeDecode:
    def test_none_is_free(self):
        c = encode_decode_time(scheme_spec("w/o"), 32, 512, 1024)
        assert c.encode_ms == 0.0 and c.decode_ms == 0.0

    def test_ae_has_backward_cost(self):
        c = encode_decode_time(scheme_spec("A1"), 32, 512, 1024)
        assert c.backward_ms > 0
        assert c.backward_ms == pytest.approx(
            2 * (c.encode_ms + c.decode_ms - 2 * CALIBRATION.kernel_launch_ms), rel=0.01
        )

    def test_topk_encode_dominated_by_scan(self):
        """Table 4: Top-K encode ≈ constant across T1–T4 (scan-dominated)."""
        t1 = encode_decode_time(scheme_spec("T1"), 32, 512, 1024)
        t4 = encode_decode_time(scheme_spec("T4"), 32, 512, 1024)
        assert t4.encode_ms < 1.5 * t1.encode_ms
        assert t4.decode_ms > 3 * t1.decode_ms  # decode scales with k

    def test_randomk_encode_catastrophic(self):
        """The Python sampler costs ~3 orders more than torch.topk."""
        r1 = encode_decode_time(scheme_spec("R1"), 32, 512, 1024)
        t1 = encode_decode_time(scheme_spec("T1"), 32, 512, 1024)
        assert r1.encode_ms > 20 * t1.encode_ms

    def test_paper_t1_encode_calibration(self):
        """24 calls of T1 encode ≈ 70 ms (Table 4)."""
        c = encode_decode_time(scheme_spec("T1"), 32, 512, 1024)
        assert 24 * c.encode_ms == pytest.approx(70.08, rel=0.2)

    def test_paper_r1_encode_calibration(self):
        c = encode_decode_time(scheme_spec("R1"), 32, 512, 1024)
        assert 24 * c.encode_ms == pytest.approx(2040.24, rel=0.2)

    def test_quant_cost_independent_of_bits(self):
        q1 = encode_decode_time(scheme_spec("Q1"), 32, 512, 1024)
        q2 = encode_decode_time(scheme_spec("Q2"), 32, 512, 1024)
        assert q1.encode_ms == pytest.approx(q2.encode_ms)

    def test_decode_multiplicity_scales_sparse(self):
        one = encode_decode_time(scheme_spec("T2"), 32, 512, 1024, decode_multiplicity=1)
        four = encode_decode_time(scheme_spec("T2"), 32, 512, 1024, decode_multiplicity=4)
        assert four.decode_ms > 3 * one.decode_ms

    def test_unknown_family_rejected(self):
        from repro.compression.notation import SchemeSpec

        with pytest.raises(ValueError):
            encode_decode_time(SchemeSpec("X", "mystery"), 32, 512, 1024)
