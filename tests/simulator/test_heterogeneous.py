"""Heterogeneous link/straggler models in the iteration simulator.

The contract has two halves.  First, opting out must be free:
``links=None`` (the default) keeps every formula on the original
homogeneous code path, bitwise — the pinned bench baselines depend on
it, and IEEE float addition makes "mathematically equal" insufficient.
Second, opting in must localize: a degraded PP link moves only
``pipeline_ms``, a degraded TP link only the collective columns, and a
straggler rank gates exactly its stage.
"""

import dataclasses

import pytest

from repro.parallel.topology import ClusterTopology
from repro.simulator import IterationSimulator, SimSetting
from repro.simulator.hardware import LINKS, LinkModel, LinkSpec, LinkType


def aws(nodes=1):
    return ClusterTopology.p3_8xlarge(nodes)


def setting(mb=32, **kw):
    kw.setdefault("schedule", "gpipe")
    return SimSetting(aws(), 2, 2, mb, 512, num_microbatches=4, **kw)


ETH = LINKS[LinkType.ETHERNET]


class TestHomogeneousPathUntouched:
    @pytest.mark.parametrize("schedule", ["gpipe", "1f1b"])
    @pytest.mark.parametrize("scheme", ["w/o", "A1", "T2", "R2"])
    def test_links_none_is_bitwise_identical(self, schedule, scheme):
        a = IterationSimulator(setting(schedule=schedule, scheme=scheme)).breakdown()
        b = IterationSimulator(setting(schedule=schedule, scheme=scheme,
                                       links=None)).breakdown()
        assert dataclasses.astuple(a) == dataclasses.astuple(b)

    @pytest.mark.parametrize("schedule", ["gpipe", "1f1b"])
    def test_empty_link_model_matches_homogeneous(self, schedule):
        """An all-default LinkModel is the same cluster, just computed on
        the per-stage path; totals agree to float tolerance."""
        a = IterationSimulator(setting(schedule=schedule, scheme="T2")).breakdown()
        b = IterationSimulator(setting(schedule=schedule, scheme="T2",
                                       links=LinkModel())).breakdown()
        assert b.total_ms == pytest.approx(a.total_ms, rel=1e-9)
        assert b.pipeline_ms == pytest.approx(a.pipeline_ms, rel=1e-9)


class TestStragglers:
    @pytest.mark.parametrize("schedule", ["gpipe", "1f1b"])
    def test_slow_rank_gates_the_iteration(self, schedule):
        base = IterationSimulator(setting(schedule=schedule)).breakdown()
        slow = IterationSimulator(setting(
            schedule=schedule,
            links=LinkModel(slow_ranks={0: 1.5}))).breakdown()
        assert slow.total_ms > base.total_ms
        assert slow.forward_ms > base.forward_ms

    def test_straggler_gates_only_its_stage(self):
        """Slowing a rank of stage 1 and a rank of stage 0 by the same
        factor must cost the same (balanced stages), and slowing both
        ranks of one stage costs no more than one (max, not sum)."""
        one = IterationSimulator(setting(
            links=LinkModel(slow_ranks={0: 1.5}))).breakdown()
        other_stage = IterationSimulator(setting(
            links=LinkModel(slow_ranks={2: 1.5}))).breakdown()
        both_ranks = IterationSimulator(setting(
            links=LinkModel(slow_ranks={0: 1.5, 1: 1.5}))).breakdown()
        assert one.total_ms == pytest.approx(other_stage.total_ms, rel=1e-6)
        assert both_ranks.total_ms == pytest.approx(one.total_ms, rel=1e-9)

    def test_sub_unity_multiplier_rejected(self):
        with pytest.raises(ValueError, match="must be >= 1.0"):
            LinkModel(slow_ranks={0: 0.5})


class TestDegradedLinks:
    def test_degraded_pp_link_moves_only_pipeline_column(self):
        """Dense scheme: boundary messages are large enough to be
        bandwidth-bound, so an Ethernet boundary inflates pipeline_ms
        and leaves compute/TP columns alone."""
        base = IterationSimulator(setting(scheme="w/o")).breakdown()
        deg = IterationSimulator(setting(
            scheme="w/o", links=LinkModel(pp_links={0: ETH}))).breakdown()
        assert deg.pipeline_ms > base.pipeline_ms * 2
        assert deg.forward_ms == pytest.approx(base.forward_ms, rel=1e-9)
        assert deg.tensor_comm_ms == pytest.approx(base.tensor_comm_ms, rel=1e-9)

    def test_degraded_tp_link_moves_collective_columns(self):
        """Dense scheme again: forward g collectives feel the slow link."""
        base = IterationSimulator(setting(scheme="w/o")).breakdown()
        deg = IterationSimulator(setting(
            scheme="w/o",
            links=LinkModel(tp_links={0: ETH, 1: ETH}))).breakdown()
        assert deg.tensor_comm_ms > base.tensor_comm_ms
        assert deg.backward_ms > base.backward_ms
        assert deg.optimizer_ms == pytest.approx(base.optimizer_ms, rel=1e-9)

    def test_compressed_messages_dodge_the_slow_tp_link(self):
        """The payoff the paper can't measure on a uniform testbed: T2's
        compressed forward messages drop under the small-message floor,
        so degrading stage 1's TP link barely moves tensor_comm while
        the dense all-reduces in backward still pay full price.  At
        micro-batch 8 the T2 message (819198 B) sits just under the
        819200 B small-message floor."""
        base = IterationSimulator(setting(mb=8, scheme="T2")).breakdown()
        deg = IterationSimulator(setting(
            mb=8, scheme="T2", links=LinkModel(tp_links={1: ETH}))).breakdown()
        # Stage 1 holds the compressed layers (12-23): forward collectives
        # there are small-message-flat, hence link-insensitive.
        assert deg.tensor_comm_ms == pytest.approx(base.tensor_comm_ms, rel=1e-6)
        assert deg.backward_ms > base.backward_ms

    def test_scaled_link_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ETH.scaled(0.0)
        half = ETH.scaled(0.5, latency_factor=2.0)
        assert half.bandwidth_gbps == pytest.approx(ETH.bandwidth_gbps * 0.5)
        assert half.p2p_gbps == pytest.approx(ETH.p2p_gbps * 0.5)
        assert half.latency_s == pytest.approx(ETH.latency_s * 2.0)
        assert isinstance(half, LinkSpec)

    def test_scaled_link_degrades_monotonically(self):
        full = IterationSimulator(setting(
            scheme="w/o", links=LinkModel(pp_links={0: ETH}))).breakdown()
        half = IterationSimulator(setting(
            scheme="w/o",
            links=LinkModel(pp_links={0: ETH.scaled(0.5)}))).breakdown()
        assert half.pipeline_ms > full.pipeline_ms


class TestPlacementReport:
    def test_report_shape_and_links(self):
        sim = IterationSimulator(setting(
            scheme="T2", links=LinkModel(tp_links={1: ETH})))
        report = sim.placement_report()
        tp = [e for e in report if e["kind"] == "tp"]
        pp = [e for e in report if e["kind"] == "pp"]
        assert [e["index"] for e in tp] == [0, 1]
        assert [e["index"] for e in pp] == [0]
        assert tp[0]["link"] == "NVLink"
        assert tp[1]["link"] == "10GbE"
        for e in report:
            assert e["dense_ms"] > 0 and e["compressed_ms"] > 0
            assert e["speedup"] == pytest.approx(
                e["dense_ms"] / e["compressed_ms"])

    def test_compression_pays_most_on_the_slow_link(self):
        """The answer the report exists to give: same scheme, same model,
        compression speedup on the Ethernet stage dwarfs the NVLink one
        (small messages cost the flat floor regardless of fabric)."""
        sim = IterationSimulator(setting(
            mb=8, scheme="T2", links=LinkModel(tp_links={1: ETH})))
        tp = {e["index"]: e for e in sim.placement_report()
              if e["kind"] == "tp"}
        assert tp[1]["speedup"] > 10 * tp[0]["speedup"]
        assert tp[0]["speedup"] > 1.0  # still helps, just less
