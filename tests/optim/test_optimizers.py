"""Optimizer and LR-schedule tests."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD, Adam, AdamW, ConstantLR, WarmupLinearLR
from repro.tensor import Tensor, functional as F


def quadratic_param(start=5.0):
    return Parameter(np.array([start], dtype=np.float32))


def step_quadratic(opt, p, n=50):
    for _ in range(n):
        opt.zero_grad()
        (p * p).sum().backward()
        opt.step()
    return float(p.data[0])


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(step_quadratic(SGD([p], lr=0.1), p)) < 1e-3

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        v_plain = abs(step_quadratic(SGD([p1], lr=0.01), p1, n=20))
        v_mom = abs(step_quadratic(SGD([p2], lr=0.01, momentum=0.9), p2, n=20))
        assert v_mom < v_plain

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] < 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_params_without_grad(self):
        p1, p2 = quadratic_param(), quadratic_param()
        opt = SGD([p1, p2], lr=0.1)
        p1.grad = np.ones(1, dtype=np.float32)
        before = p2.data.copy()
        opt.step()
        np.testing.assert_array_equal(p2.data, before)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        assert abs(step_quadratic(Adam([p], lr=0.3), p, n=100)) < 0.05

    def test_bias_correction_first_step(self):
        # After one step with grad g, Adam moves by ~lr * sign(g).
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([4.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(p.data[0], 1.0 - 0.1, atol=1e-3)

    def test_adamw_decoupled_decay(self):
        pw = Parameter(np.array([2.0], dtype=np.float32))
        opt = AdamW([pw], lr=0.1, weight_decay=0.1)
        pw.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        # Pure decay: 2.0 * (1 - lr*wd)
        np.testing.assert_allclose(pw.data[0], 2.0 * (1 - 0.01), rtol=1e-5)

    def test_clip_grad_norm(self):
        p = Parameter(np.array([0.0, 0.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([3.0, 4.0], dtype=np.float32)
        norm = opt.clip_grad_norm(1.0)
        np.testing.assert_allclose(norm, 5.0, rtol=1e-5)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0, rtol=1e-4)

    def test_clip_noop_when_below(self):
        p = Parameter(np.array([0.1], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([0.5], dtype=np.float32)
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, [0.5])


class TestSchedules:
    def test_constant(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.5)
        sched = ConstantLR(opt)
        for _ in range(3):
            assert sched.step() == 0.5

    def test_warmup_then_decay(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = WarmupLinearLR(opt, warmup_steps=10, total_steps=20)
        lrs = [sched.step() for _ in range(20)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[9] == pytest.approx(1.0)  # peak at end of warmup
        assert lrs[19] == pytest.approx(0.0)
        assert max(lrs) == pytest.approx(1.0)

    def test_total_steps_validation(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            WarmupLinearLR(SGD([p], lr=1.0), warmup_steps=0, total_steps=0)

    def test_trains_tiny_model_end_to_end(self):
        """Smoke: Adam + schedule reduce loss on a 2-layer MLP XOR-ish task."""
        rng = np.random.default_rng(0)
        from repro import nn

        w1 = nn.Linear(2, 8, rng)
        w2 = nn.Linear(8, 2, rng)
        X = rng.normal(size=(64, 2)).astype(np.float32)
        y = ((X[:, 0] * X[:, 1]) > 0).astype(np.int64)
        params = w1.parameters() + w2.parameters()
        opt = Adam(params, lr=1e-2)
        losses = []
        for _ in range(150):
            opt.zero_grad()
            logits = w2(F.relu(w1(Tensor(X))))
            loss = F.cross_entropy(logits, y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5
