"""Rule engine plumbing: registry, suppressions, CLI report surface."""

import json
import textwrap

import pytest

from repro.lint import LintError, available_rules, lint_paths, lint_source
from repro.lint.cli import main


def test_registry_has_at_least_six_rules():
    rules = available_rules()
    assert len(rules) >= 6
    assert len({r.id for r in rules}) == len(rules)
    assert all(r.id.startswith("REPRO") for r in rules)


def test_clean_source_yields_nothing():
    assert lint_source("x = 1\n") == []


def test_inline_suppression_by_id_and_slug():
    bad = "def f(x=[]):\n    return x\n"
    assert any(f.rule == "REPRO005" for f in lint_source(bad))
    for tag in ("REPRO005", "mutable-default", "all"):
        suppressed = f"def f(x=[]):  # lint: disable={tag}\n    return x\n"
        assert lint_source(suppressed) == []


def test_suppression_is_line_scoped():
    src = textwrap.dedent(
        """
        def f(x=[]):  # lint: disable=REPRO005
            return x

        def g(y={}):
            return y
        """
    )
    findings = lint_source(src)
    assert [f.rule for f in findings] == ["REPRO005"]
    assert findings[0].message.startswith("mutable default argument in g")


def test_syntax_error_becomes_parse_finding():
    (f,) = lint_source("def broken(:\n")
    assert f.rule == "REPRO000" and f.name == "parse-error"


def test_unknown_rule_selection_raises():
    with pytest.raises(LintError):
        lint_source("x = 1\n", rule_ids=["REPRO999"])


def test_rule_selection_by_slug():
    bad = "import numpy as np\nr = np.random.rand(3)\n"
    assert lint_source(bad, rule_ids=["seeded-rng"])
    assert lint_source(bad, rule_ids=["no-eval-exec"]) == []


def test_lint_paths_rejects_missing_path(tmp_path):
    with pytest.raises(LintError):
        lint_paths([tmp_path / "nope"])


def test_cli_clean_and_dirty_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out

    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    assert main([str(dirty)]) == 1
    assert "REPRO005" in capsys.readouterr().out


def test_cli_json_report_and_fix_report_file(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("def f(x=[]):\n    return x\n")
    report_path = tmp_path / "report.json"
    code = main(["--json", "--fix-report", str(report_path), str(dirty)])
    assert code == 1
    printed = json.loads(capsys.readouterr().out)
    on_disk = json.loads(report_path.read_text())
    assert printed == on_disk
    assert on_disk["clean"] is False
    assert on_disk["counts_by_rule"] == {"REPRO005": 1}
    assert on_disk["findings"][0]["path"] == str(dirty)


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005",
                "REPRO006", "REPRO007", "REPRO008", "REPRO009", "REPRO010",
                "DYN001", "DYN002", "DYN003", "DYN004", "DYN005"):
        assert rid in out


def test_cli_no_paths_is_usage_error(capsys):
    assert main([]) == 2


def test_cli_parse_error_exit_code(tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2


def test_suppression_covers_multiline_statement():
    # The finding anchors on the continuation line (the default's own
    # line); the disable comment sits on the statement's first line.
    src = ("def f(a,  # lint: disable=REPRO005\n"
           "      b=[]):\n"
           "    return b\n")
    bare = src.replace("  # lint: disable=REPRO005", "")
    (finding,) = lint_source(bare, rule_ids=["REPRO005"])
    assert finding.line == 2  # really anchored inside the statement
    assert lint_source(src, rule_ids=["REPRO005"]) == []


def test_suppression_on_continuation_line_still_works():
    src = ("def f(a,\n"
           "      b=[]):  # lint: disable=mutable-default\n"
           "    return b\n")
    assert lint_source(src, rule_ids=["REPRO005"]) == []


def test_header_suppression_does_not_leak_into_body():
    # The innermost covering statement wins: the body statement anchors
    # to itself, not to the suppressed def header.
    src = ("def f():  # lint: disable=all\n"
           "    eval('1')\n")
    (finding,) = lint_source(src, rule_ids=["REPRO007"])
    assert finding.line == 2
