"""DYN002 oracle under microbatching and the 1F1B schedule.

With ``num_microbatches = m`` every site fires ``m`` times on ``batch/m``
rows; the multiset is schedule-independent.  The closed-form oracle must
scale its counts and shrink its byte expectations accordingly — and a
real microbatched 1F1B iteration must still diff clean against it.
"""

import numpy as np
import pytest

from repro.lint.spmd_check import check_layout, expected_events
from repro.nn.transformer import TransformerConfig
from repro.parallel.runtime import ModelParallelConfig


def config_for(scheme="A2", tp=2, pp=2, schedule="gpipe", m=1):
    mc = TransformerConfig(vocab_size=60, max_seq_len=16, hidden=32,
                           num_layers=4, num_heads=4, dropout=0.0)
    return ModelParallelConfig(mc, tp=tp, pp=pp, scheme=scheme, seed=0,
                               pipeline_schedule=schedule, num_microbatches=m)


class TestExpectedEventsMicrobatched:
    @pytest.mark.parametrize("scheme", ["w/o", "T2", "Q2", "A2"])
    def test_counts_scale_and_bytes_shrink_to_microbatch(self, scheme):
        """m microbatches of batch/m rows = the m=1 multiset with every
        count multiplied by m (same keys: batch/m rows each)."""
        single = expected_events(config_for(scheme), batch=2, seq=8)
        split = expected_events(config_for(scheme, m=2), batch=4, seq=8)
        assert set(split) == set(single)
        for key, count in single.items():
            assert split[key] == 2 * count

    def test_schedule_does_not_change_the_multiset(self):
        gpipe = expected_events(config_for(m=4, schedule="gpipe"), 8, 8)
        onefb = expected_events(config_for(m=4, schedule="1f1b"), 8, 8)
        assert gpipe == onefb

    def test_indivisible_batch_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            expected_events(config_for(m=3), batch=4, seq=8)


class TestMicrobatchedRunsDiffClean:
    @pytest.mark.parametrize("scheme,tp,pp", [
        ("A2", 2, 2), ("Q2", 1, 2), ("R2", 2, 2), ("w/o", 1, 2),
    ])
    def test_1f1b_m2_cell_is_clean(self, scheme, tp, pp):
        assert check_layout(scheme, tp, pp, batch=4, schedule="1f1b",
                            num_microbatches=2) == []

    def test_mismatch_names_the_schedule_cell(self):
        """A doctored expectation must report the (schedule, m) cell."""
        from repro.lint import spmd_check

        problems = check_layout("w/o", 1, 2, batch=4, schedule="1f1b",
                                num_microbatches=2, seq=9)
        # seq=9 is fine — sanity that an honest run stays clean even off
        # the default sequence length.
        assert problems == []

    def test_event_count_regression_is_flagged(self, monkeypatch):
        """Drop one expected event: the diff must surface it with the
        schedule/m cell in the message."""
        import repro.lint.spmd_check as mod

        real = mod.expected_events

        def doctored(config, batch, seq):
            exp = real(config, batch, seq)
            key = next(iter(exp))
            exp[key] -= 1
            return exp

        monkeypatch.setattr(mod, "expected_events", doctored)
        problems = mod.check_layout("w/o", 1, 2, batch=4, schedule="1f1b",
                                    num_microbatches=2)
        assert problems and "schedule=1f1b m=2" in problems[0]
