"""Each AST rule: one violating snippet, one conforming snippet."""

import textwrap

from repro.lint import lint_source


def rules_hit(src: str, path: str = "src/module.py") -> set[str]:
    return {f.rule for f in lint_source(textwrap.dedent(src), path)}


class TestTrackedCollective:
    def test_missing_tracker_flagged(self):
        assert "REPRO001" in rules_hit("out = tp_all_reduce(parts, comp)\n")
        assert "REPRO001" in rules_hit("y = tp_broadcast(x, world)\n")
        assert "REPRO001" in rules_hit("y = pipeline_transfer(x, comp, boundary=0)\n")

    def test_positional_and_keyword_tracker_ok(self):
        assert "REPRO001" not in rules_hit("out = tp_all_reduce(parts, comp, tracker)\n")
        assert "REPRO001" not in rules_hit(
            "y = pipeline_transfer(x, comp, tracker=tr, boundary=0)\n"
        )

    def test_method_style_call_checked(self):
        assert "REPRO001" in rules_hit("y = collectives.tp_broadcast(x, 4)\n")


class TestSeededRng:
    def test_legacy_global_rng_flagged(self):
        assert "REPRO002" in rules_hit("import numpy as np\nx = np.random.rand(3)\n")
        assert "REPRO002" in rules_hit("import numpy as np\nnp.random.seed(0)\n")

    def test_unseeded_default_rng_flagged(self):
        assert "REPRO002" in rules_hit("import numpy as np\nr = np.random.default_rng()\n")

    def test_seeded_default_rng_ok(self):
        assert "REPRO002" not in rules_hit("import numpy as np\nr = np.random.default_rng(0)\n")
        assert "REPRO002" not in rules_hit(
            "import numpy as np\nr = np.random.default_rng(seed=3)\n"
        )

    def test_generator_annotation_not_flagged(self):
        src = """
        import numpy as np

        def f(rng: np.random.Generator) -> None:
            rng.normal(size=3)
        """
        assert "REPRO002" not in rules_hit(src)

    def test_tests_are_exempt(self):
        bad = "import numpy as np\nx = np.random.rand(3)\n"
        assert "REPRO002" not in {
            f.rule for f in lint_source(bad, "tests/test_something.py")
        }


class TestConfigValidated:
    def test_config_dataclass_without_post_init_flagged(self):
        src = """
        from dataclasses import dataclass

        @dataclass
        class SweepConfig:
            steps: int = 1
        """
        assert "REPRO003" in rules_hit(src)

    def test_post_init_satisfies(self):
        src = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class SweepConfig:
            steps: int = 1

            def __post_init__(self):
                if self.steps <= 0:
                    raise ValueError("steps")
        """
        assert "REPRO003" not in rules_hit(src)

    def test_non_config_and_non_dataclass_ignored(self):
        assert "REPRO003" not in rules_hit(
            "from dataclasses import dataclass\n\n@dataclass\nclass Event:\n    x: int = 0\n"
        )
        assert "REPRO003" not in rules_hit("class RunConfig:\n    steps = 1\n")


class TestBackwardRecords:
    def test_silent_backward_closure_flagged(self):
        src = """
        def my_collective(x, tracker):
            def backward(g):
                return (g,)
            return make(x, backward)
        """
        assert "REPRO004" in rules_hit(src)

    def test_recording_closure_ok(self):
        src = """
        def my_collective(x, tracker):
            def backward(g):
                tracker.record(event)
                return (g,)
            return make(x, backward)
        """
        assert "REPRO004" not in rules_hit(src)

    def test_backward_without_tracker_param_ignored(self):
        src = """
        def __add__(self, other):
            def backward(g):
                return (g, g)
            return make(..., backward)
        """
        assert "REPRO004" not in rules_hit(src)


class TestMutableDefault:
    def test_literals_and_ctors_flagged(self):
        assert "REPRO005" in rules_hit("def f(x=[]):\n    return x\n")
        assert "REPRO005" in rules_hit("def f(x={}):\n    return x\n")
        assert "REPRO005" in rules_hit("def f(*, x=dict()):\n    return x\n")

    def test_immutable_defaults_ok(self):
        assert "REPRO005" not in rules_hit("def f(x=(), y=None, z=1, s='a'):\n    return x\n")


class TestStableSeed:
    def test_hash_in_default_rng_flagged(self):
        assert "REPRO006" in rules_hit(
            "import numpy as np\nr = np.random.default_rng(seed + hash(name) % 100)\n"
        )

    def test_hash_in_seed_kwarg_flagged(self):
        assert "REPRO006" in rules_hit("c = build(thing, seed=hash(key))\n")

    def test_crc32_seed_ok(self):
        assert "REPRO006" not in rules_hit(
            "import zlib\nimport numpy as np\n"
            "r = np.random.default_rng(zlib.crc32(name.encode()))\n"
        )


class TestNoEvalExec:
    def test_eval_exec_flagged(self):
        assert "REPRO007" in rules_hit("x = eval('1+1')\n")
        assert "REPRO007" in rules_hit("exec('x = 1')\n")

    def test_method_named_eval_ok(self):
        assert "REPRO007" not in rules_hit("model.eval()\n")


def test_repo_source_tree_is_clean():
    """The shipped src/ tree must satisfy its own linter."""
    from repro.lint import lint_paths

    assert lint_paths(["src"]) == []
