"""SPMD consistency: closed-form oracle vs recorded CommEvent streams."""

from collections import Counter

import pytest

from repro.lint.spmd_check import (
    DEFAULT_LAYOUTS,
    DEFAULT_SCHEMES,
    EventKey,
    check_layout,
    compare_event_streams,
    run_spmd_check,
)


@pytest.mark.parametrize("scheme", DEFAULT_SCHEMES)
@pytest.mark.parametrize("tp,pp", DEFAULT_LAYOUTS)
def test_event_stream_matches_oracle(scheme, tp, pp):
    """Acceptance matrix: {w/o, topk, randomk, quant, ae} × three layouts."""
    assert check_layout(scheme, tp, pp) == []


def test_full_matrix_runner_is_clean():
    assert run_spmd_check() == []


def _key(phase="forward", wire_bytes=128):
    return EventKey("all_reduce", "tp", phase, "none", wire_bytes, 2, 0, "attn")


class TestCompareEventStreams:
    def test_identical_streams_match(self):
        c = Counter({_key(): 2})
        assert compare_event_streams(c, c.copy()) == []

    def test_double_counted_event_detected(self):
        expected = Counter({_key(): 1})
        actual = Counter({_key(): 2})
        (msg,) = compare_event_streams(expected, actual)
        assert "expected 1 event(s), observed 2" in msg

    def test_dropped_backward_detected(self):
        expected = Counter({_key(): 1, _key(phase="backward"): 1})
        actual = Counter({_key(): 1})
        (msg,) = compare_event_streams(expected, actual)
        assert "backward" in msg and "observed 0" in msg

    def test_wrong_bytes_detected_as_two_diffs(self):
        expected = Counter({_key(wire_bytes=128): 1})
        actual = Counter({_key(wire_bytes=96): 1})
        msgs = compare_event_streams(expected, actual)
        assert len(msgs) == 2  # missing the 128-byte event, extra 96-byte one


class TestRegressionsAreCaught:
    """Corrupt a real run's stream and verify the checker notices."""

    def _run(self, scheme="A2", tp=2, pp=2):
        import numpy as np

        from repro.lint.spmd_check import expected_events, observed_events
        from repro.nn.transformer import TransformerConfig
        from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

        model_cfg = TransformerConfig(vocab_size=60, max_seq_len=16, hidden=32,
                                      num_layers=4, num_heads=4, dropout=0.0)
        config = ModelParallelConfig(model_cfg, tp=tp, pp=pp, scheme=scheme)
        model = ModelParallelBertClassifier(config)
        ids = np.random.default_rng(0).integers(0, 60, size=(2, 8))
        model.loss(ids, np.zeros(2, dtype=np.int64)).backward()
        return expected_events(config, 2, 8), model.tracker

    def test_injected_duplicate_event_flagged(self):
        from repro.lint.spmd_check import compare_event_streams, observed_events

        expected, tracker = self._run()
        tracker.record(tracker.events[0])  # double-count regression
        assert compare_event_streams(expected, observed_events(tracker))

    def test_removed_event_flagged(self):
        from repro.lint.spmd_check import compare_event_streams, observed_events

        expected, tracker = self._run()
        tracker.events.pop()  # dropped-message regression
        assert compare_event_streams(expected, observed_events(tracker))
