"""CLI surface of the concurrency verification layer.

``--model-check`` / ``--race-log`` / ``--changed-only`` — the entry
points CI and `make` drive.  The changed-only tests run against a
scratch git repository so they are independent of this checkout's state.
"""

import json
import subprocess

import pytest

from repro.lint.cli import main
from repro.parallel.backend.conclog import ConcurrencyLog


class TestModelCheckFlag:
    def test_clean_protocol_exits_zero_with_stats(self, capsys):
        assert main(["--model-check"]) == 0
        captured = capsys.readouterr()
        assert "clean (static + dynamic)" in captured.out
        assert "explored exhaustively" in captured.err

    def test_combines_with_fix_report(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert main(["--model-check", "--fix-report", str(report)]) == 0
        data = json.loads(report.read_text())
        assert data["clean"] is True and data["dynamic_checks"] is True
        capsys.readouterr()


class TestRaceLogFlag:
    def test_missing_log_is_a_dyn003_finding(self, tmp_path, capsys):
        assert main(["--race-log", str(tmp_path / "nope")]) == 1
        out = capsys.readouterr().out
        assert "DYN003" in out and "cannot load" in out

    def test_clean_recorded_log_exits_zero(self, tmp_path, capsys):
        log = ConcurrencyLog(rank=0, world=1, path=tmp_path / "conc-rank0.jsonl")
        log.emit("step_end", step=0)
        log.flush()
        assert main(["--race-log", str(tmp_path)]) == 0
        assert "clean (static + dynamic)" in capsys.readouterr().out

    def test_corrupt_log_names_the_race(self, tmp_path, capsys):
        log = ConcurrencyLog(rank=0, world=1, path=tmp_path / "conc-rank0.jsonl")
        log.emit("handle_issue", hid=1, htype="exchange", label="fwd", crc=1)
        log.flush()  # issued, never waited
        assert main(["--race-log", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DYN003" in out and "never" in out


@pytest.fixture
def scratch_repo(tmp_path, monkeypatch):
    def git(*args):
        subprocess.run(["git", *args], cwd=tmp_path, check=True,
                       capture_output=True)

    git("init", "-q", "-b", "main")
    git("config", "user.email", "ci@example.invalid")
    git("config", "user.name", "ci")
    (tmp_path / "clean.py").write_text("X = 1\n")
    git("add", ".")
    git("commit", "-q", "-m", "seed")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestChangedOnly:
    def test_no_changes_is_clean(self, scratch_repo, capsys):
        assert main(["--changed-only"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_untracked_dirty_file_is_linted(self, scratch_repo, capsys):
        (scratch_repo / "dirty.py").write_text("def f(x=[]):\n    return x\n")
        assert main(["--changed-only"]) == 1
        assert "REPRO005" in capsys.readouterr().out

    def test_modified_tracked_file_is_linted(self, scratch_repo, capsys):
        (scratch_repo / "clean.py").write_text("def f(x=[]):\n    return x\n")
        assert main(["--changed-only"]) == 1
        assert "clean.py" in capsys.readouterr().out

    def test_unchanged_dirty_file_is_not_linted(self, scratch_repo, capsys):
        # A pre-existing finding in an untouched file must not block a
        # changed-only run — that is the whole point of the flag.
        def git(*args):
            subprocess.run(["git", *args], cwd=scratch_repo, check=True,
                           capture_output=True)

        (scratch_repo / "legacy.py").write_text("def f(x=[]):\n    return x\n")
        git("add", "legacy.py")
        git("commit", "-q", "-m", "legacy wart")
        # merge-base(HEAD, main) == HEAD, so the committed wart is out of
        # scope; only the new untracked file is linted.
        (scratch_repo / "fresh.py").write_text("Y = 2\n")
        assert main(["--changed-only"]) == 0
        capsys.readouterr()

    def test_scoping_to_a_subdirectory(self, scratch_repo, capsys):
        sub = scratch_repo / "pkg"
        sub.mkdir()
        (sub / "inner.py").write_text("def f(x=[]):\n    return x\n")
        (scratch_repo / "outer.py").write_text("def g(y=[]):\n    return y\n")
        assert main(["--changed-only", "pkg"]) == 1
        out = capsys.readouterr().out
        assert "inner.py" in out and "outer.py" not in out

    def test_bad_base_ref_is_usage_error(self, scratch_repo, capsys):
        assert main(["--changed-only", "--base", "no-such-ref"]) == 2
        assert "error" in capsys.readouterr().err
