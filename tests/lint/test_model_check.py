"""DYN004: the bounded model checker over the real shm transport.

The clean-run test proves the search is exhaustive and fast; the
mutation tests delete real protocol checks (the seq validation, the
barrier readiness comparison, the full-slot refusal) and assert the
checker reports each with a finding naming the slot / seq / rank — the
observability contract the ISSUE's acceptance criteria demand.
"""

import time

import numpy as np

from repro.lint.model_check import run_model_check
from repro.parallel.backend import transport as T


def test_clean_protocol_explores_exhaustively_and_fast():
    stats = {}
    t0 = time.monotonic()
    findings = run_model_check(stats)
    elapsed = time.monotonic() - t0
    assert findings == []
    assert stats["scenarios"] >= 7
    assert stats["states"] > 100
    assert stats["transitions"] > stats["states"]
    assert elapsed < 30.0  # the ISSUE budget is 60s; normally ~10ms


def test_deleted_seq_and_magic_checks_are_detected(monkeypatch):
    # The mutation: _commit_recv with its header validation stripped —
    # exactly what a careless refactor of the drain path produces.
    def unchecked_commit_recv(self):
        seq = self._recv_seq + 1
        slot = (seq - 1) % self.slots
        (got_seq, magic, code, ndim, _, nbytes, *shape) = T._HEADER_BODY.unpack_from(
            self._buf, slot * self.slot_bytes + 4)
        out = np.empty(shape[:ndim], dtype=T._DTYPES[code])
        if nbytes:
            out.reshape(-1).view(np.uint8)[:] = self._payload[slot][:nbytes]
        self._recv_seq = seq
        self._status[slot][0] = T._EMPTY
        return out

    monkeypatch.setattr(T.ShmChannel, "_commit_recv", unchecked_commit_recv)
    findings = run_model_check()
    assert any("tampered-seq" in f and "99" in f for f in findings)
    assert any("corrupt-magic" in f for f in findings)


def test_broken_barrier_readiness_is_detected(monkeypatch):
    # The mutation: peers_ready never sees a straggler, so departures can
    # run ahead of arrivals — the early-departure cross-check must fire.
    monkeypatch.setattr(T.ShmBarrier, "peers_ready",
                        lambda self, generation: None)
    findings = run_model_check()
    assert any("early barrier departure" in f for f in findings)
    assert any("stale-barrier" in f for f in findings)


def test_send_ignoring_full_slot_is_detected(monkeypatch):
    # The mutation: try_send commits unconditionally, clobbering whatever
    # occupies the target slot.
    def reckless_try_send(self, arr):
        arr, code = self._check_sendable(arr)
        self._commit_send(arr, code)
        return True

    monkeypatch.setattr(T.ShmChannel, "try_send", reckless_try_send)
    findings = run_model_check()
    assert any("slot overwrite" in f for f in findings)
    assert any("full-ring" in f for f in findings)


def test_stats_dict_is_optional():
    assert run_model_check() == []
