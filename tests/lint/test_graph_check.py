"""Tensor sanitizer hooks and the tiny-model graph check."""

import numpy as np
import pytest

from repro.lint.graph_check import GraphCheckError, TensorSanitizer, run_graph_check
from repro.tensor import Tensor, tensor_guard


class TestTensorSanitizer:
    def test_clean_ops_pass_and_are_counted(self):
        s = TensorSanitizer()
        with tensor_guard(s):
            a = Tensor(np.ones((2, 3)), requires_grad=True)
            (a * 2.0).sum().backward()
        assert s.checked > 0

    def test_nan_in_forward_raises_at_producing_op(self):
        s = TensorSanitizer()
        a = Tensor(np.array([1.0, 0.0]), requires_grad=True)
        with tensor_guard(s), np.errstate(divide="ignore"):
            with pytest.raises(GraphCheckError, match="non-finite"):
                a.log()  # log(0) -> -inf
        # The guard fired inside the op, so no poisoned tensor escaped.

    def test_nan_in_backward_gradient_raises(self):
        s = TensorSanitizer()
        a = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        y = a.sqrt().sum()  # d sqrt/dx at 0 is inf
        with tensor_guard(s), np.errstate(divide="ignore"):
            with pytest.raises(GraphCheckError, match="backward"):
                y.backward()

    def test_inf_tolerated_when_disabled(self):
        s = TensorSanitizer(forbid_inf=False, forbid_nan=False)
        a = Tensor(np.array([1.0, 0.0]), requires_grad=True)
        with tensor_guard(s), np.errstate(divide="ignore"):
            a.log()

    def test_off_policy_dtype_rejected(self):
        s = TensorSanitizer(allowed_float_dtypes=(np.float32,))
        a = Tensor(np.ones(3))
        with tensor_guard(s):
            with pytest.raises(GraphCheckError, match="dtype"):
                Tensor._make(a.data.astype(np.float64), (a,), lambda g: (g,))

    def test_integer_arrays_ignored(self):
        s = TensorSanitizer(allowed_float_dtypes=(np.float32,))
        s(np.arange(4), "forward")  # no raise

    def test_guard_uninstalled_after_context(self):
        s = TensorSanitizer()
        with tensor_guard(s):
            pass
        before = s.checked
        Tensor(np.ones(2), requires_grad=True).sum()
        assert s.checked == before


class TestRunGraphCheck:
    def test_default_matrix_is_clean(self):
        assert run_graph_check() == []

    def test_single_scheme_subset(self):
        assert run_graph_check(schemes=("A2",), tp=2, pp=1) == []
