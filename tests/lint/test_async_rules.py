"""REPRO008-010: the async-handle AST rules.

Each snippet is linted with only the rule under test selected, so the
assertions are not polluted by the other rules (a discarded issue call,
for example, trips both REPRO008 and nothing else here).
"""

import textwrap

from repro.lint import lint_source


def _lint(src, rule, path="src/module.py"):
    return lint_source(textwrap.dedent(src), path=path, rule_ids=[rule])


class TestHandleWaited:  # REPRO008
    def test_discarded_issue_result(self):
        (f,) = _lint(
            """
            def step(ctx, grad):
                tp_all_reduce_issue(ctx, grad)
                return grad
            """, "REPRO008")
        assert "discarded" in f.message

    def test_assigned_but_never_waited(self):
        (f,) = _lint(
            """
            def step(ctx, grad):
                h = tp_all_reduce_issue(ctx, grad)
                return grad
            """, "REPRO008")
        assert "'h'" in f.message and "without waiting" in f.message

    def test_straight_line_wait_is_clean(self):
        assert _lint(
            """
            def step(ctx, grad):
                h = tp_all_reduce_issue(ctx, grad)
                out = compute(grad)
                h.wait()
                return out
            """, "REPRO008") == []

    def test_one_branch_leaks(self):
        (f,) = _lint(
            """
            def step(ctx, grad, skip):
                h = tp_all_reduce_issue(ctx, grad)
                if skip:
                    return grad
                h.wait()
                return grad
            """, "REPRO008")
        assert "exits without waiting" in f.message

    def test_wait_on_every_branch_is_clean(self):
        assert _lint(
            """
            def step(ctx, grad, fast):
                h = tp_all_reduce_issue(ctx, grad)
                if fast:
                    return h.wait()
                h.wait()
                return grad
            """, "REPRO008") == []

    def test_raise_path_is_not_a_leak(self):
        assert _lint(
            """
            def step(ctx, grad, ok):
                h = tp_all_reduce_issue(ctx, grad)
                if not ok:
                    raise ValueError("bad step")
                h.wait()
                return grad
            """, "REPRO008") == []

    def test_escape_via_return_is_clean(self):
        assert _lint(
            """
            def issue(ctx, grad):
                h = tp_all_reduce_issue(ctx, grad)
                return h
            """, "REPRO008") == []

    def test_escape_via_call_argument_is_clean(self):
        assert _lint(
            """
            def step(ctx, grad):
                h = tp_all_reduce_issue(ctx, grad)
                track(h)
                return grad
            """, "REPRO008") == []

    def test_escape_via_closure_capture_is_clean(self):
        # The finish/backward pattern: the nested function owns the wait.
        assert _lint(
            """
            def forward(ctx, x):
                h = exchange_issue(ctx, x)
                def finish():
                    return h.wait()
                return finish
            """, "REPRO008") == []

    def test_wait_in_enclosing_continuation_is_clean(self):
        # The issue sits inside a branch; the wait that discharges it
        # lives in the *enclosing* block's continuation.
        assert _lint(
            """
            def step(ctx, grad):
                if ctx.overlap:
                    h = tp_all_reduce_issue(ctx, grad)
                else:
                    h = tp_all_reduce_issue(ctx, grad)
                h.wait()
                return grad
            """, "REPRO008") == []

    def test_none_guarded_wait_is_conservatively_flagged(self):
        # The rule cannot prove `h is not None` covers exactly the issuing
        # path, so the guarded-wait idiom is (deliberately) reported; use
        # an unconditional wait or a targeted suppression instead.
        findings = _lint(
            """
            def step(ctx, grad, overlap):
                h = None
                if overlap:
                    h = tp_all_reduce_issue(ctx, grad)
                if h is not None:
                    h.wait()
                return grad
            """, "REPRO008")
        assert [f.rule for f in findings] == ["REPRO008"]

    def test_loop_body_wait_covers_loop_local_issue(self):
        assert _lint(
            """
            def drain(ctx, grads):
                for g in grads:
                    h = tp_all_reduce_issue(ctx, g)
                    h.wait()
            """, "REPRO008") == []

    def test_test_files_are_exempt(self):
        leaky = """
            def step(ctx, grad):
                tp_all_reduce_issue(ctx, grad)
            """
        assert _lint(leaky, "REPRO008", path="tests/test_leak.py") == []
        assert _lint(leaky, "REPRO008")  # same code elsewhere does trip


class TestNoBlockingInFlight:  # REPRO009
    def test_blocking_collective_in_window(self):
        (f,) = _lint(
            """
            def step(ctx, grad, x):
                h = tp_all_reduce_issue(ctx, grad)
                tp_broadcast(ctx, x)
                h.wait()
            """, "REPRO009")
        assert "tp_broadcast" in f.message and "in-flight window" in f.message
        assert "'h'" in f.message

    def test_compute_in_window_is_clean(self):
        assert _lint(
            """
            def step(ctx, grad, x):
                h = tp_all_reduce_issue(ctx, grad)
                y = matmul(x, x)
                h.wait()
                return y
            """, "REPRO009") == []

    def test_blocking_call_after_wait_is_clean(self):
        assert _lint(
            """
            def step(ctx, grad, x):
                h = tp_all_reduce_issue(ctx, grad)
                h.wait()
                tp_broadcast(ctx, x)
            """, "REPRO009") == []

    def test_barrier_wait_in_window(self):
        findings = _lint(
            """
            def step(ctx, grad):
                h = exchange_issue(ctx, grad)
                ctx.transport.barrier_wait(timeout=5.0)
                h.wait()
            """, "REPRO009")
        assert [f.rule for f in findings] == ["REPRO009"]


class TestDeadlineOnWait:  # REPRO010
    def test_transport_recv_without_timeout(self):
        (f,) = _lint(
            """
            def pull(ctx, src):
                return ctx.transport.recv(src)
            """, "REPRO010")
        assert "recv()" in f.message and "timeout=" in f.message

    def test_transport_recv_with_timeout_is_clean(self):
        assert _lint(
            """
            def pull(ctx, src):
                return ctx.transport.recv(src, timeout=ctx.timeout)
            """, "REPRO010") == []

    def test_unique_names_checked_regardless_of_receiver(self):
        findings = _lint(
            """
            def sync(t, out):
                t.barrier_wait()
                return t.exchange_issue(out)
            """, "REPRO010")
        assert sorted(f.message.split("(")[0].split()[-1] for f in findings) == \
            ["barrier_wait", "exchange_issue"]

    def test_non_transport_receiver_is_not_gated(self):
        assert _lint(
            """
            def push(conn, payload):
                conn.send(payload)
            """, "REPRO010") == []

    def test_handle_wait_is_not_a_transport_wait(self):
        assert _lint(
            """
            def finish(handle):
                return handle.wait()
            """, "REPRO010") == []

    def test_test_files_are_exempt(self):
        src = """
            def pull(transport):
                return transport.recv(0)
            """
        assert _lint(src, "REPRO010", path="tests/test_transport.py") == []
        assert _lint(src, "REPRO010")
