"""DYN003: the offline happens-before checker over hand-built event logs.

Each test constructs a small synthetic log with the :class:`_LogBuilder`
below (same shape as the events :mod:`repro.parallel.backend.conclog`
records) and asserts the replay either passes or produces a finding that
names the rank / mailbox / slot / seq involved — the mutation-evidence
contract from the module docstring.
"""

import pytest

from repro.lint.race_check import run_race_check, run_race_check_on_path
from repro.parallel.backend.conclog import ConcurrencyLog


class _LogBuilder:
    """Synthesizes per-rank event streams with a shared monotone clock."""

    def __init__(self, world):
        self.world = world
        self._t = 0.0
        self._idx = {r: 0 for r in range(world)}
        self.events = []
        for r in range(world):
            self.ev(r, "meta", world=world)

    def ev(self, rank, kind, t=None, **fields):
        self._t += 1e-6
        event = {"kind": kind, "rank": rank, "idx": self._idx[rank],
                 "t": self._t if t is None else t, **fields}
        self._idx[rank] += 1
        self.events.append(event)
        return event


def _send(log, seq, slot, src=0, dst=1, **kw):
    return log.ev(src, "send", src=src, dst=dst, slot=slot, seq=seq, **kw)


def _recv(log, seq, slot, src=0, dst=1, got_seq=None, **kw):
    return log.ev(dst, "recv", src=src, dst=dst, slot=slot, seq=seq,
                  got_seq=seq if got_seq is None else got_seq, **kw)


class TestCleanRuns:
    def test_empty_log_is_itself_a_finding(self):
        (finding,) = run_race_check([])
        assert "empty" in finding and "REPRO_CONC_LOG" in finding

    def test_single_delivery_is_clean(self):
        log = _LogBuilder(2)
        _send(log, 1, 0)
        _recv(log, 1, 0)
        assert run_race_check(log.events) == []

    def test_wraparound_with_proper_draining_is_clean(self):
        # slots=2: seq 3 reuses slot 0, legal because seq 1 was drained
        # (and stamped) before the rewrite.
        log = _LogBuilder(2)
        _send(log, 1, 0)
        _send(log, 2, 1)
        _recv(log, 1, 0)
        _send(log, 3, 0)
        _recv(log, 2, 1)
        _recv(log, 3, 0)
        assert run_race_check(log.events) == []

    def test_barrier_handles_and_steps_are_clean(self):
        log = _LogBuilder(2)
        for r in (0, 1):
            log.ev(r, "barrier_arrive", gen=1)
        for r in (0, 1):
            log.ev(r, "barrier_depart", gen=1)
        log.ev(0, "handle_issue", hid=1, htype="exchange", label="fwd", crc=7)
        log.ev(0, "handle_wait", hid=1, htype="exchange", crc=7, dup=False)
        log.ev(0, "handle_wait", hid=1, htype="exchange", crc=7, dup=True)
        log.ev(0, "step_end", step=0)
        log.ev(1, "step_end", step=0)
        assert run_race_check(log.events) == []


class TestFrameChecks:
    def test_missing_rank_is_reported(self):
        log = _LogBuilder(1)
        log.events[0]["world"] = 3  # rank 0 claims world=3; ranks 1,2 silent
        (finding,) = run_race_check(log.events)
        assert "rank(s) [1, 2]" in finding

    def test_index_gap_means_truncated_log(self):
        log = _LogBuilder(1)
        log.ev(0, "step_end", step=0)
        log.events[-1]["idx"] = 5
        findings = run_race_check(log.events)
        assert any("index gap" in f for f in findings)


class TestChannelAccounting:
    def test_stale_got_seq_names_mailbox_slot_and_seqs(self):
        log = _LogBuilder(2)
        _send(log, 1, 0)
        _recv(log, 1, 0, got_seq=99)
        findings = run_race_check(log.events)
        assert any("stale message" in f and "0->1" in f and "slot 0" in f
                   and "99" in f for f in findings)

    def test_phantom_recv_without_send(self):
        log = _LogBuilder(2)
        _recv(log, 1, 0)
        findings = run_race_check(log.events)
        assert any("no send committed" in f for f in findings)

    def test_lost_in_flight_message(self):
        log = _LogBuilder(2)
        _send(log, 1, 0)
        findings = run_race_check(log.events)
        assert any("never received" in f and "seq [1]" in f for f in findings)

    def test_slot_overwrite_when_previous_occupant_never_drained(self):
        # slots=1: seq 2 rewrites slot 0 but seq 1 was never received.
        log = _LogBuilder(2)
        _send(log, 1, 0)
        _send(log, 2, 0)
        _recv(log, 2, 0)
        findings = run_race_check(log.events)
        assert any("slot overwrite" in f and "seq 2" in f
                   and "seq 1 was never drained" in f for f in findings)

    def test_wall_order_violation_on_delivery_edge(self):
        # The recv is stamped *before* the send that supposedly fed it —
        # the interleaving a dropped seq/status check produces.
        log = _LogBuilder(2)
        _send(log, 1, 0, t=5.0)
        _recv(log, 1, 0, t=1.0)
        findings = run_race_check(log.events)
        assert any("happens-before violation" in f and "delivery" in f
                   for f in findings)


class TestBarrierAccounting:
    def test_departure_without_peer_arrival_is_stale_generation(self):
        log = _LogBuilder(2)
        log.ev(0, "barrier_arrive", gen=1)
        log.ev(0, "barrier_depart", gen=1)
        findings = run_race_check(log.events)
        assert any("rank 1 never arrived" in f and "stale generation" in f
                   for f in findings)

    def test_generation_must_advance_by_exactly_one(self):
        log = _LogBuilder(1)
        log.ev(0, "barrier_arrive", gen=2)
        findings = run_race_check(log.events)
        assert any("must advance" in f for f in findings)

    def test_departure_before_peer_arrival_violates_wall_order(self):
        log = _LogBuilder(2)
        log.ev(0, "barrier_arrive", gen=1, t=1.0)
        log.ev(1, "barrier_arrive", gen=1, t=9.0)
        log.ev(0, "barrier_depart", gen=1, t=2.0)  # before rank 1 arrived
        log.ev(1, "barrier_depart", gen=1, t=10.0)
        findings = run_race_check(log.events)
        assert any("happens-before violation" in f and "barrier" in f
                   for f in findings)


class TestHandleLifecycle:
    def test_never_waited_handle(self):
        log = _LogBuilder(1)
        log.ev(0, "handle_issue", hid=3, htype="exchange", label="bwd", crc=1)
        findings = run_race_check(log.events)
        assert any("'bwd'" in f and "never" in f and "waited" in f
                   for f in findings)

    def test_crc_mismatch_means_buffer_mutated_in_flight(self):
        log = _LogBuilder(1)
        log.ev(0, "handle_issue", hid=1, htype="exchange", label="fwd", crc=0xAA)
        log.ev(0, "handle_wait", hid=1, htype="exchange", crc=0xBB, dup=False)
        findings = run_race_check(log.events)
        assert any("mutated between issue and wait" in f for f in findings)

    def test_double_noncached_completion(self):
        log = _LogBuilder(1)
        log.ev(0, "handle_issue", hid=1, htype="exchange", label="fwd", crc=1)
        log.ev(0, "handle_wait", hid=1, htype="exchange", crc=1, dup=False)
        log.ev(0, "handle_wait", hid=1, htype="exchange", crc=1, dup=False)
        findings = run_race_check(log.events)
        assert any("must cache" in f for f in findings)

    def test_completion_without_issue(self):
        log = _LogBuilder(1)
        log.ev(0, "handle_wait", hid=9, htype="exchange", crc=1, dup=False)
        findings = run_race_check(log.events)
        assert any("never issued" in f for f in findings)


class TestGraphStructure:
    def test_contradictory_ordering_claims_form_a_cycle(self):
        # Each rank receives the other's message *before* sending its own:
        # delivery edges + program order close a cycle.
        log = _LogBuilder(2)
        log.ev(1, "recv", src=0, dst=1, slot=0, seq=1, got_seq=1)
        log.ev(0, "recv", src=1, dst=0, slot=0, seq=1, got_seq=1)
        log.ev(0, "send", src=0, dst=1, slot=0, seq=1)
        log.ev(1, "send", src=1, dst=0, slot=0, seq=1)
        findings = run_race_check(log.events)
        assert any("cycle" in f for f in findings)


class TestPathLoading:
    def test_missing_path_is_a_finding_not_a_crash(self, tmp_path):
        (finding,) = run_race_check_on_path(tmp_path / "nope")
        assert "cannot load" in finding

    def test_real_log_file_roundtrip(self, tmp_path):
        log = ConcurrencyLog(rank=0, world=1, path=tmp_path / "conc-rank0.jsonl")
        log.emit("step_end", step=0)
        log.flush()
        assert run_race_check_on_path(tmp_path) == []
