"""DYN005: the static pipeline-schedule verifier.

Clean grid first, then targeted mutations of ``schedule_ops`` /
``peak_inflight_microbatches`` / ``iteration_slots`` — each must surface
as a finding naming the schedule, stage and microbatch involved.
"""

import pytest

from repro.lint import schedule_check
from repro.lint.schedule_check import run_schedule_check
from repro.parallel.pipeline import ScheduleOp


def test_full_grid_is_clean():
    assert run_schedule_check() == []


def test_dropped_backward_is_incomplete(monkeypatch):
    real = schedule_check.schedule_ops

    def dropped(schedule, pp, stage, m):
        ops = real(schedule, pp, stage, m)
        if schedule == "1f1b" and stage == 0:
            return [op for op in ops
                    if not (op.kind == "B" and op.microbatch == m - 1)]
        return ops

    monkeypatch.setattr(schedule_check, "schedule_ops", dropped)
    findings = run_schedule_check()
    assert any("1f1b" in f and "stage 0" in f
               and "expected one F and one B" in f for f in findings)


def test_backward_before_its_forward_deadlocks(monkeypatch):
    real = schedule_check.schedule_ops

    def swapped(schedule, pp, stage, m):
        ops = real(schedule, pp, stage, m)
        if schedule == "1f1b" and pp == 2 and stage == 0 and m >= 2:
            # Move the first backward ahead of every forward: B(0) now
            # waits on F(0) which its own stage will never reach.
            bwd = next(op for op in ops if op.kind == "B")
            rest = [op for op in ops if op is not bwd]
            return [bwd] + rest
        return ops

    monkeypatch.setattr(schedule_check, "schedule_ops", swapped)
    findings = run_schedule_check()
    assert any("deadlock" in f for f in findings)
    assert any("blocked at B0" in f for f in findings)


def test_dishonest_peak_inflight_promise(monkeypatch):
    real = schedule_check.peak_inflight_microbatches
    monkeypatch.setattr(schedule_check, "peak_inflight_microbatches",
                        lambda schedule, pp, stage, m: real(schedule, pp, stage, m) + 1)
    findings = run_schedule_check()
    assert any("memory bound is wrong" in f for f in findings)


def test_dishonest_makespan_promise(monkeypatch):
    monkeypatch.setattr(schedule_check, "iteration_slots",
                        lambda schedule, m, pp: m + pp)
    findings = run_schedule_check()
    assert any("bubble math is off" in f for f in findings)


class TestScheduleOpValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScheduleOp("X", 0)

    def test_negative_microbatch_rejected(self):
        with pytest.raises(ValueError):
            ScheduleOp("F", -1)

    def test_valid_ops_construct(self):
        assert ScheduleOp("F", 0).kind == "F"
        assert ScheduleOp("B", 3).microbatch == 3
