"""Tests for the synthetic GLUE suite, topic model, loaders and MLM corpus."""

import numpy as np
import pytest

from repro.data import (
    GLUE_TASKS,
    Batch,
    MLMCorpus,
    TopicModel,
    Vocab,
    batch_iter,
    glue_score,
    make_task,
    mask_tokens,
)

RNG = np.random.default_rng(0)


class TestVocab:
    def test_specials_distinct(self):
        v = Vocab()
        specials = [v.PAD, v.CLS, v.SEP, v.MASK, v.UNK]
        assert len(set(specials)) == 5
        assert all(v.is_special(s) for s in specials)

    def test_content_range(self):
        v = Vocab(64)
        assert list(v.content_range())[0] == v.content_start
        assert v.num_content == 64 - v.content_start

    def test_too_small(self):
        with pytest.raises(ValueError):
            Vocab(8)


class TestTopicModel:
    def test_partition_covers_content(self):
        tm = TopicModel(num_topics=8)
        all_tokens = np.concatenate(tm.topic_tokens)
        assert sorted(all_tokens) == list(tm.vocab.content_range())

    def test_sentence_respects_purity(self):
        tm = TopicModel(num_topics=8, purity=1.0)
        s = tm.sample_sentence(2, 200, np.random.default_rng(0))
        assert set(s).issubset(set(tm.topic_tokens[2]))

    def test_ring_distance(self):
        tm = TopicModel(num_topics=8)
        assert tm.ring_distance(0, 7) == 1
        assert tm.ring_distance(0, 4) == 4
        assert tm.ring_distance(3, 3) == 0

    def test_related_and_far(self):
        tm = TopicModel(num_topics=8)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert tm.ring_distance(3, tm.related_topic(3, rng)) == 1
            assert tm.ring_distance(3, tm.far_topic(3, rng)) >= 2

    def test_topic_of_token(self):
        tm = TopicModel(num_topics=4)
        tok = tm.topic_tokens[1][0]
        assert tm.topic_of_token(int(tok)) == 1
        assert tm.topic_of_token(0) is None  # PAD

    def test_validation(self):
        with pytest.raises(ValueError):
            TopicModel(num_topics=2)
        with pytest.raises(ValueError):
            TopicModel(purity=0.0)


class TestTasks:
    def test_all_eight_tasks_present(self):
        assert set(GLUE_TASKS) == {"MNLI", "QQP", "SST-2", "MRPC", "CoLA", "QNLI",
                                   "RTE", "STS-B"}

    def test_unknown_task(self):
        with pytest.raises(KeyError):
            make_task("SQUAD")

    @pytest.mark.parametrize("name", sorted(GLUE_TASKS))
    def test_shapes_and_labels(self, name):
        train, evals = make_task(name, seq_len=16, seed=1)
        spec = GLUE_TASKS[name]
        assert train.input_ids.shape == (spec.train_size, 16)
        assert train.attention_mask.shape == train.input_ids.shape
        assert len(train.labels) == spec.train_size
        if spec.regression:
            assert train.labels.dtype == np.float32
            assert train.labels.min() >= 0 and train.labels.max() <= 5
        else:
            assert train.labels.dtype == np.int64
            assert set(np.unique(train.labels)).issubset(set(range(spec.num_classes)))
        for split in spec.eval_splits:
            assert len(evals[split]) == spec.eval_size

    def test_mnli_has_two_eval_splits(self):
        _, evals = make_task("MNLI", seed=0)
        assert set(evals) == {"m", "mm"}

    def test_cls_sep_structure(self):
        train, _ = make_task("QQP", seq_len=16, seed=0)
        v = Vocab()
        assert (train.input_ids[:, 0] == v.CLS).all()
        assert ((train.input_ids == v.SEP).sum(axis=1) == 2).all()  # pair task

    def test_single_task_one_sep(self):
        train, _ = make_task("SST-2", seq_len=16, seed=0)
        v = Vocab()
        assert ((train.input_ids == v.SEP).sum(axis=1) == 1).all()

    def test_attention_mask_matches_padding(self):
        train, _ = make_task("RTE", seq_len=16, seed=0)
        v = Vocab()
        np.testing.assert_array_equal(train.attention_mask, train.input_ids != v.PAD)

    def test_deterministic_given_seed(self):
        t1, _ = make_task("CoLA", seed=5)
        t2, _ = make_task("CoLA", seed=5)
        np.testing.assert_array_equal(t1.input_ids, t2.input_ids)

    def test_different_seeds_differ(self):
        t1, _ = make_task("CoLA", seed=5)
        t2, _ = make_task("CoLA", seed=6)
        assert not np.array_equal(t1.input_ids, t2.input_ids)

    def test_train_size_override(self):
        train, _ = make_task("SST-2", train_size=32)
        assert len(train) == 32

    def test_labels_roughly_balanced(self):
        train, _ = make_task("QNLI", seed=3)
        frac = train.labels.mean()
        assert 0.3 < frac < 0.7

    def test_sts_b_label_is_high_half_fraction(self):
        """STS-B labels equal 5 × the fraction of high-half content tokens."""
        v = Vocab()
        train, _ = make_task("STS-B", seed=0)
        content = np.arange(v.content_start, v.size)
        mid = v.content_start + len(content) // 2
        for row in range(20):
            ids = train.input_ids[row]
            toks = ids[(ids >= v.content_start)]
            frac = (toks >= mid).mean()
            assert train.labels[row] == pytest.approx(5 * frac, abs=1e-5)

    def test_mnli_uses_nine_topics(self):
        from repro.data.tasks import GLUE_TASKS

        assert GLUE_TASKS["MNLI"].num_topics % 3 == 0

    def test_glue_score(self):
        assert glue_score({"a": 80.0, "b": 90.0}) == 85.0
        with pytest.raises(ValueError):
            glue_score({})


class TestLoaders:
    def test_batch_iteration_covers_all(self):
        train, _ = make_task("SST-2", train_size=50)
        seen = 0
        for b in batch_iter(train, 16):
            assert isinstance(b, Batch)
            seen += len(b)
        assert seen == 50

    def test_drop_last(self):
        train, _ = make_task("SST-2", train_size=50)
        seen = sum(len(b) for b in batch_iter(train, 16, drop_last=True))
        assert seen == 48

    def test_shuffle_changes_order(self):
        train, _ = make_task("SST-2", train_size=64)
        b1 = next(batch_iter(train, 64))
        b2 = next(batch_iter(train, 64, rng=np.random.default_rng(0)))
        assert not np.array_equal(b1.input_ids, b2.input_ids)

    def test_invalid_batch_size(self):
        train, _ = make_task("SST-2", train_size=8)
        with pytest.raises(ValueError):
            next(batch_iter(train, 0))


class TestMLM:
    def test_mask_tokens_rates(self):
        v = Vocab()
        ids = np.random.default_rng(0).integers(v.content_start, v.size, size=(200, 64))
        masked, labels = mask_tokens(ids, v, np.random.default_rng(1))
        selected = labels != -100
        assert 0.10 < selected.mean() < 0.20
        # ~80% of selected become [MASK]
        mask_frac = (masked[selected] == v.MASK).mean()
        assert 0.7 < mask_frac < 0.9
        # labels hold original ids at selected positions
        np.testing.assert_array_equal(labels[selected], ids[selected])

    def test_specials_never_masked(self):
        v = Vocab()
        ids = np.full((10, 8), v.CLS)
        masked, labels = mask_tokens(ids, v, np.random.default_rng(0))
        assert (labels == -100).all()
        np.testing.assert_array_equal(masked, ids)

    def test_mask_prob_validation(self):
        with pytest.raises(ValueError):
            mask_tokens(np.zeros((2, 2), dtype=np.int64), Vocab(),
                        np.random.default_rng(0), mask_prob=0.0)

    def test_corpus_batch_structure(self):
        corpus = MLMCorpus(seq_len=16, seed=0)
        b = corpus.batch(8)
        assert b.input_ids.shape == (8, 16)
        assert (b.input_ids[:, 0] == corpus.vocab.CLS).all() | (
            b.input_ids[:, 0] == corpus.vocab.MASK
        ).all()
        assert (b.labels != -100).any()

    def test_corpus_batches_differ(self):
        corpus = MLMCorpus(seq_len=16, seed=0)
        b1, b2 = corpus.batch(4), corpus.batch(4)
        assert not np.array_equal(b1.input_ids, b2.input_ids)

    def test_corpus_batch_size_validation(self):
        with pytest.raises(ValueError):
            MLMCorpus().batch(0)
