"""Tests for GLUE metrics against scipy references where available."""

import numpy as np
import pytest
from scipy import stats

from repro.data.metrics import (
    METRICS,
    accuracy,
    f1_binary,
    matthews_corrcoef,
    pearson_corr,
    spearman_corr,
)

RNG = np.random.default_rng(0)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_perfect(self):
        assert accuracy(np.arange(5), np.arange(5)) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestF1:
    def test_known_value(self):
        preds = np.array([1, 1, 0, 1, 0])
        labels = np.array([1, 0, 0, 1, 1])
        # tp=2, fp=1, fn=1 → p=2/3, r=2/3 → f1=2/3
        assert f1_binary(preds, labels) == pytest.approx(2 / 3)

    def test_no_true_positives(self):
        assert f1_binary(np.zeros(4), np.ones(4)) == 0.0

    def test_all_correct(self):
        assert f1_binary(np.array([1, 0, 1]), np.array([1, 0, 1])) == 1.0


class TestMatthews:
    def test_against_manual(self):
        preds = np.array([1, 1, 0, 0, 1, 0, 1, 0])
        labels = np.array([1, 0, 0, 1, 1, 0, 1, 1])
        tp, tn, fp, fn = 3.0, 2.0, 1.0, 2.0
        expected = (tp * tn - fp * fn) / np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
        assert matthews_corrcoef(preds, labels) == pytest.approx(expected)

    def test_collapsed_predictions_give_zero(self):
        """All-one-class predictions → MCC 0, as in the paper's Table 5 zeros."""
        labels = RNG.integers(0, 2, size=50)
        assert matthews_corrcoef(np.ones(50), labels) == 0.0
        assert matthews_corrcoef(np.zeros(50), labels) == 0.0

    def test_perfect_and_inverse(self):
        labels = np.array([0, 1, 0, 1, 1, 0])
        assert matthews_corrcoef(labels, labels) == pytest.approx(1.0)
        assert matthews_corrcoef(1 - labels, labels) == pytest.approx(-1.0)


class TestCorrelations:
    def test_spearman_matches_scipy(self):
        a = RNG.normal(size=40)
        b = 0.5 * a + RNG.normal(size=40)
        ours = spearman_corr(a, b)
        ref = stats.spearmanr(a, b).statistic
        assert ours == pytest.approx(ref, abs=1e-10)

    def test_spearman_with_ties_matches_scipy(self):
        a = np.array([1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0])
        b = np.array([2.0, 1.0, 3.0, 3.0, 5.0, 4.0, 6.0])
        assert spearman_corr(a, b) == pytest.approx(stats.spearmanr(a, b).statistic, abs=1e-10)

    def test_spearman_monotonic_is_one(self):
        a = RNG.normal(size=20)
        assert spearman_corr(a, np.exp(a)) == pytest.approx(1.0)

    def test_constant_input_returns_zero(self):
        assert spearman_corr(np.ones(10), RNG.normal(size=10)) == 0.0
        assert pearson_corr(np.ones(10), RNG.normal(size=10)) == 0.0

    def test_pearson_matches_numpy(self):
        a, b = RNG.normal(size=30), RNG.normal(size=30)
        assert pearson_corr(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_metrics_registry(self):
        assert set(METRICS) == {"accuracy", "f1", "matthews", "spearman"}
