"""EF wrapper in the collectives: per-rank residuals, byte accounting, and
compressor parameter registration without name collisions."""

import numpy as np
import pytest

from repro.compression import TopKCompressor
from repro.compression.error_feedback import ErrorFeedbackCompressor
from repro.nn.module import Parameter
from repro.nn.transformer import TransformerConfig
from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig
from repro.parallel.collectives import CommTracker, pipeline_transfer, tp_all_reduce
from repro.tensor import Tensor

RNG = np.random.default_rng(5)


class TestEFAcrossTPRanks:
    def test_all_gather_path_keys_residuals_per_rank(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.25))
        parts = [Tensor(RNG.normal(size=(2, 4, 8)).astype(np.float32))
                 for _ in range(2)]
        tp_all_reduce(parts, ef, CommTracker(), layer=2, site="mlp")
        assert set(ef._residuals) == {"layer2.mlp.rank0", "layer2.mlp.rank1"}

    def test_rank_residual_matches_that_ranks_partial(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.25))
        parts = [Tensor(RNG.normal(size=(2, 4, 8)).astype(np.float32))
                 for _ in range(2)]
        tp_all_reduce(parts, ef, CommTracker(), layer=0, site="attn")
        for rank, p in enumerate(parts):
            expected = p.data - ef.inner.decompress(ef.inner.compress(p.data))
            np.testing.assert_allclose(
                ef.residual(f"layer0.attn.rank{rank}"), expected, rtol=1e-6
            )

    def test_two_steps_accumulate_independently(self):
        """Each rank's second message must be corrected by its *own* residual:
        the summed output differs from a stateless double-call."""
        stateless = TopKCompressor(0.25)
        ef = ErrorFeedbackCompressor(TopKCompressor(0.25))
        data = [RNG.normal(size=(2, 4, 8)).astype(np.float32) for _ in range(2)]
        tr = CommTracker()
        tp_all_reduce([Tensor(d) for d in data], ef, tr, layer=1, site="mlp")
        r1 = {rank: ef.residual(f"layer1.mlp.rank{rank}").copy()
              for rank in range(2)}
        out2 = tp_all_reduce([Tensor(d) for d in data], ef, tr, layer=1, site="mlp")
        plain = sum(stateless.roundtrip(d) for d in data)
        assert not np.allclose(out2.data, plain)  # residuals fed forward
        # Step 2 compresses each rank's d + its own step-1 residual.
        expected = sum(stateless.roundtrip(d + r1[rank])
                       for rank, d in enumerate(data))
        np.testing.assert_allclose(out2.data, expected, rtol=1e-5)


class TestEFByteAccounting:
    def test_pipeline_transfer_bytes_and_scheme_label(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.25))
        tr = CommTracker()
        shape = (2, 4, 32)
        x = Tensor(RNG.normal(size=shape).astype(np.float32), requires_grad=True)
        y = pipeline_transfer(x, ef, tr, boundary=0)
        y.sum().backward()
        fwd = tr.filtered(group="pp", phase="forward")[0]
        bwd = tr.filtered(group="pp", phase="backward")[0]
        # EF changes *what* is compressed, never the wire format: the events
        # must carry the inner compressor's sizes under the ef(...) label.
        inner = TopKCompressor(0.25)
        assert fwd.scheme == "ef(topk)" and bwd.scheme == "ef(topk)"
        assert fwd.wire_bytes == inner.compressed_bytes(shape)
        assert bwd.wire_bytes == inner.backward_bytes(shape)

    def test_summary_groups_ef_traffic_under_its_label(self):
        ef = ErrorFeedbackCompressor(TopKCompressor(0.25))
        tr = CommTracker()
        x = Tensor(RNG.normal(size=(2, 4, 32)).astype(np.float32), requires_grad=True)
        parts = [Tensor(RNG.normal(size=(2, 4, 32)).astype(np.float32))
                 for _ in range(2)]
        tp_all_reduce(parts, ef, tr, layer=0, site="attn")
        pipeline_transfer(x, ef, tr, boundary=0).sum().backward()
        summary = tr.summary()
        inner = TopKCompressor(0.25)
        assert summary[("tp", "forward", "ef(topk)")] == inner.compressed_bytes((2, 4, 32))
        assert summary[("pp", "forward", "ef(topk)")] == inner.compressed_bytes((2, 4, 32))
        assert summary[("pp", "backward", "ef(topk)")] == inner.backward_bytes((2, 4, 32))


class _ThreeParamCompressor:
    """Minimal stateful compressor with a third learnable tensor (e.g. a
    bias): the registration regression's trigger."""

    name = "fake3"
    learnable = True
    allreduce_compatible = False

    def __init__(self):
        self.encoder = Parameter(np.zeros((4, 2), dtype=np.float32))
        self.decoder = Parameter(np.zeros((2, 4), dtype=np.float32))
        self.bias = Parameter(np.zeros(4, dtype=np.float32))

    def parameters(self):
        return [self.encoder, self.decoder, self.bias]


class TestCompressorParamRegistration:
    def small(self, **kw):
        return TransformerConfig(vocab_size=60, max_seq_len=16, hidden=32,
                                 num_layers=4, num_heads=4, dropout=0.0, **kw)

    def test_extra_parameters_get_unique_names(self):
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(self.small(), tp=1, pp=1)
        )
        backbone = mp.backbone
        comp = _ThreeParamCompressor()
        backbone._site_compressors["layer0.attn"] = comp
        backbone._register_compressor_params()
        names = backbone.compressor_parameter_names
        assert len(names) == 3
        assert len(set(names)) == 3, f"colliding names: {names}"
        assert "compressor.layer0.attn.encoder" in names
        assert "compressor.layer0.attn.decoder" in names
        # the third parameter must not silently shadow the decoder
        registered = dict(backbone.named_parameters())
        assert registered["compressor.layer0.attn.param2"] is comp.bias

    def test_duplicate_registration_is_loud(self):
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(self.small(), tp=1, pp=1)
        )
        backbone = mp.backbone
        backbone._site_compressors["layer0.attn"] = _ThreeParamCompressor()
        backbone._register_compressor_params()
        with pytest.raises(ValueError, match="duplicate compressor parameter"):
            backbone._register_compressor_params()  # same names again

    def test_ae_sites_register_all_params_without_loss(self):
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(self.small(), tp=2, pp=2, scheme="A2")
        )
        names = mp.backbone.compressor_parameter_names
        sites = set(mp.backbone._site_compressors)
        # every AE site contributes exactly encoder + decoder
        assert len(names) == 2 * len(sites)
        assert len(set(names)) == len(names)
