"""Communication tracking and compression plumbing in the MP runtime."""

import numpy as np
import pytest

from repro.compression import (
    AutoencoderCompressor,
    CompressionPolicy,
    NoCompressor,
    QuantizationCompressor,
    TopKCompressor,
)
from repro.nn.transformer import TransformerConfig
from repro.parallel import (
    CommTracker,
    ModelParallelBertClassifier,
    ModelParallelConfig,
)
from repro.parallel.collectives import pipeline_transfer, tp_all_reduce, tp_broadcast
from repro.tensor import Tensor

RNG = np.random.default_rng(0)


def small_config(**kw):
    defaults = dict(vocab_size=60, max_seq_len=16, hidden=32, num_layers=4,
                    num_heads=4, dropout=0.0)
    defaults.update(kw)
    return TransformerConfig(**defaults)


class TestCollectiveOps:
    def test_all_reduce_none_records_dense_bytes(self):
        tr = CommTracker()
        parts = [Tensor(RNG.normal(size=(2, 3, 8)).astype(np.float32)) for _ in range(4)]
        out = tp_all_reduce(parts, NoCompressor(), tr)
        np.testing.assert_allclose(out.data, sum(p.data for p in parts), rtol=1e-5)
        (e,) = tr.filtered(phase="forward")
        assert e.op == "all_reduce" and e.wire_bytes == 2 * 3 * 8 * 2 and e.world == 4

    def test_all_reduce_backward_event(self):
        tr = CommTracker()
        parts = [Tensor(RNG.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
                 for _ in range(2)]
        out = tp_all_reduce(parts, NoCompressor(), tr)
        out.sum().backward()
        assert tr.count(phase="backward", op="all_reduce") == 1

    def test_ae_all_reduce_sums_codes(self):
        """AE path: dec(Σ enc(xᵢ)) == Σ dec(enc(xᵢ)) by linearity."""
        tr = CommTracker()
        ae = AutoencoderCompressor(hidden=32, code_dim=8, seed=0)
        parts = [Tensor(RNG.normal(size=(2, 5, 32)).astype(np.float32)) for _ in range(2)]
        out = tp_all_reduce(parts, ae, tr)
        expected = sum(ae.roundtrip(p.data) for p in parts)
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-5)
        (e,) = tr.filtered(phase="forward")
        assert e.op == "all_reduce"  # AE keeps the all-reduce path
        assert e.wire_bytes == 2 * 5 * 8 * 2  # code bytes, not activation bytes

    def test_sparse_scheme_takes_all_gather_path(self):
        tr = CommTracker()
        parts = [Tensor(RNG.normal(size=(2, 5, 32)).astype(np.float32)) for _ in range(2)]
        out = tp_all_reduce(parts, TopKCompressor(0.25), tr)
        (e,) = tr.filtered(phase="forward")
        assert e.op == "all_gather"
        # Sum of sparsified partials
        expected = sum(TopKCompressor(0.25).roundtrip(p.data) for p in parts)
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_quant_backward_bytes_dense(self):
        """§3.3: quantization cannot shrink the backward message."""
        tr = CommTracker()
        q = QuantizationCompressor(4)
        parts = [Tensor(RNG.normal(size=(4, 32)).astype(np.float32), requires_grad=True)
                 for _ in range(2)]
        out = tp_all_reduce(parts, q, tr)
        out.sum().backward()
        (bwd,) = tr.filtered(phase="backward")
        assert bwd.wire_bytes == 4 * 32 * 2  # dense fp16
        (fwd,) = tr.filtered(phase="forward")
        assert fwd.wire_bytes < bwd.wire_bytes  # forward was compressed

    def test_world_one_is_silent(self):
        tr = CommTracker()
        x = Tensor(RNG.normal(size=(2, 4)).astype(np.float32))
        out = tp_all_reduce([x], TopKCompressor(0.1), tr)
        assert out is x
        assert tr.count() == 0

    def test_broadcast_backward_accounting(self):
        tr = CommTracker()
        x = Tensor(RNG.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
        y = tp_broadcast(x, 4, tr)
        y.sum().backward()
        (e,) = tr.events
        assert e.phase == "backward" and e.op == "all_reduce"

    def test_broadcast_world_one_noop(self):
        tr = CommTracker()
        x = Tensor(np.zeros(3))
        assert tp_broadcast(x, 1, tr) is x

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            tp_all_reduce(
                [Tensor(np.zeros((2, 3))), Tensor(np.zeros((2, 4)))],
                NoCompressor(), CommTracker(),
            )

    def test_empty_partials_rejected(self):
        with pytest.raises(ValueError):
            tp_all_reduce([], NoCompressor(), CommTracker())

    def test_pipeline_transfer_records_both_directions(self):
        tr = CommTracker()
        ae = AutoencoderCompressor(hidden=32, code_dim=8)
        x = Tensor(RNG.normal(size=(2, 5, 32)).astype(np.float32), requires_grad=True)
        y = pipeline_transfer(x, ae, tr, boundary=0)
        y.sum().backward()
        fwd = tr.filtered(group="pp", phase="forward")[0]
        bwd = tr.filtered(group="pp", phase="backward")[0]
        assert fwd.wire_bytes == 2 * 5 * 8 * 2
        assert bwd.wire_bytes == 2 * 5 * 8 * 2
        assert fwd.site == "boundary0"

    def test_pipeline_transfer_identity_keeps_values(self):
        tr = CommTracker()
        x = Tensor(RNG.normal(size=(2, 3, 4)).astype(np.float32))
        y = pipeline_transfer(x, NoCompressor(), tr, boundary=1)
        np.testing.assert_array_equal(y.data, x.data)
        assert tr.filtered()[0].wire_bytes == 2 * 3 * 4 * 2

    def test_tracker_disable(self):
        tr = CommTracker(enabled=False)
        tp_all_reduce([Tensor(np.zeros((2, 2))), Tensor(np.zeros((2, 2)))],
                      NoCompressor(), tr)
        assert tr.count() == 0

    def test_summary_keys_are_sorted(self):
        """summary() must serialize stably (bench JSON diffs by key order)."""
        tr = CommTracker()
        # Record in deliberately unsorted group/phase order: pp before tp,
        # backward before forward.
        x = Tensor(RNG.normal(size=(2, 3, 32)).astype(np.float32), requires_grad=True)
        pipeline_transfer(x, NoCompressor(), tr, boundary=0).sum().backward()
        parts = [Tensor(RNG.normal(size=(2, 4)).astype(np.float32), requires_grad=True)
                 for _ in range(2)]
        tp_all_reduce(parts, TopKCompressor(0.25), tr).sum().backward()
        keys = list(tr.summary())
        assert len(keys) >= 3
        assert keys == sorted(keys)

    def test_tracker_reset_and_totals(self):
        tr = CommTracker()
        parts = [Tensor(np.zeros((2, 2), dtype=np.float32))] * 2
        tp_all_reduce(parts, NoCompressor(), tr)
        assert tr.total_bytes(group="tp") == 8
        tr.reset()
        assert tr.count() == 0

    def test_filtered_rejects_unknown_attribute(self):
        tr = CommTracker()
        parts = [Tensor(np.zeros((2, 2), dtype=np.float32))] * 2
        tp_all_reduce(parts, NoCompressor(), tr)
        with pytest.raises(ValueError, match="unknown CommEvent attribute"):
            tr.filtered(phse="forward")  # typo must not read as "0 events"
        with pytest.raises(ValueError, match="wire_byte"):
            tr.total_bytes(wire_byte=8)

    def test_summary_groups_bytes(self):
        tr = CommTracker()
        parts = [Tensor(np.zeros((2, 2), dtype=np.float32), requires_grad=True)
                 for _ in range(2)]
        out = tp_all_reduce(parts, NoCompressor(), tr)
        pipeline_transfer(out, NoCompressor(), tr, boundary=0)
        out.sum().backward()
        summary = tr.summary()
        assert summary[("tp", "forward", "none")] == 8
        assert summary[("tp", "backward", "none")] == 8
        assert summary[("pp", "forward", "none")] == 8

    def test_comm_event_invariants_enforced(self):
        from repro.parallel.collectives import CommEvent

        good = dict(op="all_reduce", group="tp", phase="forward", scheme="none",
                    wire_bytes=8, world=2, shape=(2, 2))
        CommEvent(**good)
        with pytest.raises(ValueError, match="unknown op"):
            CommEvent(**{**good, "op": "allreduce"})
        with pytest.raises(ValueError, match="unknown group"):
            CommEvent(**{**good, "group": "ep"})
        with pytest.raises(ValueError, match="unknown phase"):
            CommEvent(**{**good, "phase": "fwd"})
        with pytest.raises(ValueError, match="wire_bytes"):
            CommEvent(**{**good, "wire_bytes": -1})
        with pytest.raises(ValueError, match="world"):
            CommEvent(**{**good, "world": 1})


class TestRuntimeCompression:
    def test_event_counts_per_forward(self):
        cfg = small_config()
        mp = ModelParallelBertClassifier(ModelParallelConfig(cfg, tp=2, pp=2))
        ids = RNG.integers(0, 60, size=(2, 8))
        mp(ids)
        # 4 layers × 2 all-reduces + 1 pipeline boundary
        assert mp.tracker.count(op="all_reduce", phase="forward") == 8
        assert mp.tracker.count(group="pp", phase="forward") == 1

    def test_backward_events_after_loss(self):
        cfg = small_config()
        mp = ModelParallelBertClassifier(ModelParallelConfig(cfg, tp=2, pp=2))
        ids = RNG.integers(0, 60, size=(2, 8))
        mp.loss(ids, np.zeros(2, dtype=np.int64)).backward()
        # each layer: 2 g-backward all-reduces + 2 f-backward all-reduces
        assert mp.tracker.count(op="all_reduce", phase="backward") == 16
        assert mp.tracker.count(group="pp", phase="backward") == 1

    def test_ae_scheme_reduces_tp_bytes(self):
        cfg = small_config(num_layers=4)
        base = ModelParallelBertClassifier(ModelParallelConfig(cfg, tp=2, pp=1))
        comp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=2, pp=1, scheme="A2",
                                policy=CompressionPolicy.last_k(4, 2))
        )
        ids = RNG.integers(0, 60, size=(2, 8))
        base(ids)
        comp(ids)
        assert comp.tracker.total_bytes(group="tp", phase="forward") < \
            base.tracker.total_bytes(group="tp", phase="forward")

    def test_compressed_layers_only_where_policy_says(self):
        cfg = small_config(num_layers=4)
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=2, pp=1, scheme="A2",
                                policy=CompressionPolicy.last_k(4, 2))
        )
        ids = RNG.integers(0, 60, size=(2, 8))
        mp(ids)
        for e in mp.tracker.filtered(phase="forward", group="tp"):
            if e.layer in (2, 3):
                assert e.scheme == "autoencoder"
            else:
                assert e.scheme == "none"

    def test_ae_params_registered_and_droppable(self):
        cfg = small_config(num_layers=4)
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=2, pp=2, scheme="A2")
        )
        names = mp.backbone.compressor_parameter_names
        assert names, "AE parameters must be registered for joint training"
        assert all(n.startswith("compressor.") for n in names)
        clean = mp.backbone.model_state_dict()
        assert not any(k.startswith("compressor.") for k in clean)

    def test_sparse_scheme_has_no_learnable_params(self):
        cfg = small_config(num_layers=4)
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=2, pp=2, scheme="T1")
        )
        assert mp.backbone.compressor_parameter_names == []

    def test_ae_params_receive_gradients(self):
        cfg = small_config(num_layers=4)
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=2, pp=2, scheme="A2")
        )
        ids = RNG.integers(0, 60, size=(2, 8))
        mp.loss(ids, np.zeros(2, dtype=np.int64)).backward()
        comp_params = [
            p for n, p in mp.named_parameters() if "compressor." in n
        ]
        assert comp_params and all(p.grad is not None for p in comp_params)

    def test_boundary_policy_respected(self):
        """Last-half policy on 4 layers, PP=2: boundary after layer 1 feeds
        layer 2 (compressed) → boundary is compressed."""
        cfg = small_config(num_layers=4)
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=1, pp=2, scheme="A2",
                                policy=CompressionPolicy.last_k(4, 2))
        )
        ids = RNG.integers(0, 60, size=(2, 8))
        mp(ids)
        (e,) = mp.tracker.filtered(group="pp", phase="forward")
        assert e.scheme == "autoencoder"

    def test_uncompressed_boundary_when_policy_excludes(self):
        cfg = small_config(num_layers=4)
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=1, pp=2, scheme="A2",
                                policy=CompressionPolicy.last_k(4, 1))
        )
        ids = RNG.integers(0, 60, size=(2, 8))
        mp(ids)
        (e,) = mp.tracker.filtered(group="pp", phase="forward")
        assert e.scheme == "none"  # boundary feeds layer 2, not in policy

    def test_tp1_scheme_has_no_tp_compressors(self):
        """TP=1 rows in the paper only compress pipeline traffic."""
        cfg = small_config(num_layers=4)
        mp = ModelParallelBertClassifier(
            ModelParallelConfig(cfg, tp=1, pp=4, scheme="A2")
        )
        keys = set(mp.backbone._site_compressors)
        assert all(k.startswith("boundary") for k in keys)
