"""mp backend vs inproc oracle: bitwise equivalence and failure surfacing.

The contract under test (DESIGN.md "Execution backends"): same seed and
batch through either backend produce *identical* losses, gradients and
``CommTracker`` accounting — ``==`` and ``array_equal``, not allclose.
Worker death must surface as a typed :class:`BackendError` naming the
failing rank, never a hang.
"""

import os
import signal
import time
from collections import Counter

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig
from repro.optim import Adam
from repro.parallel.backend import BackendError, create_backend
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

#: Keep mp gangs cheap: 2-4 workers on a tiny model, 30s step deadline.
MP_TIMEOUT = 30.0


def make_model(scheme, tp, pp, dropout=0.0):
    mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=16, dropout=dropout, num_classes=3)
    cfg = ModelParallelConfig(model=mc, tp=tp, pp=pp, scheme=scheme, seed=0,
                              backend="inproc")
    return ModelParallelBertClassifier(cfg)


def make_batch(seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 64, size=(4, 12))
    labels = rng.integers(0, 3, size=(4,))
    mask = np.ones((4, 12), dtype=np.int64)
    return ids, labels, mask


def event_key(e):
    return (e.op, e.group, e.phase, e.scheme, e.wire_bytes, e.world, e.shape,
            e.layer, e.site)


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("tp,pp,scheme", [
        (2, 2, "A2"),   # acceptance case: 2x2 with the AE scheme
        (2, 1, "T2"),   # pure TP, top-k collectives
        (1, 2, "Q2"),   # pure PP, quantized boundary
        (2, 2, "R2"),   # random-k: exercises the per-site RNG streams
        (2, 2, "w/o"),  # dense all-gather + raw boundary transfer
    ])
    def test_single_step_matches_oracle_bitwise(self, tp, pp, scheme):
        ids, labels, mask = make_batch()
        oracle_model = make_model(scheme, tp, pp)
        mp_model = make_model(scheme, tp, pp)

        oracle = create_backend("inproc", oracle_model)
        ref = oracle.train_step(ids, labels, mask)

        backend = create_backend("mp", mp_model, timeout=MP_TIMEOUT)
        try:
            got = backend.train_step(ids, labels, mask)
        finally:
            backend.close()

        assert got.loss == ref.loss  # bitwise, not allclose

        ref_grads = {n: p.grad for n, p in oracle_model.named_parameters()
                     if p.grad is not None}
        assert set(got.grads) == set(ref_grads)
        for name in sorted(ref_grads):
            assert np.array_equal(got.grads[name], ref_grads[name]), name

        # Byte accounting matches event-for-event (order-insensitive).
        assert Counter(map(event_key, got.events)) == \
            Counter(map(event_key, ref.events))
        assert mp_model.tracker.summary() == oracle_model.tracker.summary()

    def test_three_training_steps_keep_weights_identical(self):
        """Full loop: grads applied, Adam steps, weights pushed back out."""
        oracle_model = make_model("A2", 2, 2)
        mp_model = make_model("A2", 2, 2)
        oracle = create_backend("inproc", oracle_model)
        backend = create_backend("mp", mp_model, timeout=MP_TIMEOUT)
        opt_ref = Adam(oracle_model.parameters(), lr=1e-3)
        opt_got = Adam(mp_model.parameters(), lr=1e-3)
        try:
            for step in range(3):
                ids, labels, mask = make_batch(seed=step)

                opt_ref.zero_grad()
                ref = oracle.train_step(ids, labels, mask)
                oracle.apply_grads(oracle_model, ref)
                opt_ref.step()
                oracle.sync_weights(oracle_model)

                opt_got.zero_grad()
                got = backend.train_step(ids, labels, mask)
                backend.apply_grads(mp_model, got)
                opt_got.step()
                backend.sync_weights(mp_model)

                assert got.loss == ref.loss, f"step {step}"
        finally:
            backend.close()

        ref_state = oracle_model.state_dict()
        got_state = mp_model.state_dict()
        assert set(ref_state) == set(got_state)
        for name in sorted(ref_state):
            assert np.array_equal(ref_state[name], got_state[name]), name


class TestFailureSurfacing:
    def test_killed_worker_raises_backend_error_naming_rank(self):
        """SIGKILL one rank mid-gang: typed error, correct rank, no hang."""
        model = make_model("w/o", 2, 2)
        backend = create_backend("mp", model, timeout=10.0)
        victim = 3
        try:
            os.kill(backend._procs[victim].pid, signal.SIGKILL)
            backend._procs[victim].join(5.0)
            ids, labels, mask = make_batch()
            start = time.monotonic()
            with pytest.raises(BackendError) as exc:
                backend.train_step(ids, labels, mask)
            elapsed = time.monotonic() - start
            assert exc.value.rank == victim
            assert f"rank {victim}" in str(exc.value)
            assert elapsed < 25.0  # bounded by timeout + teardown, not a hang
        finally:
            backend.close()

    def test_backend_not_reusable_after_failure(self):
        model = make_model("w/o", 2, 1)
        backend = create_backend("mp", model, timeout=10.0)
        try:
            os.kill(backend._procs[0].pid, signal.SIGKILL)
            backend._procs[0].join(5.0)
            ids, labels, mask = make_batch()
            with pytest.raises(BackendError):
                backend.train_step(ids, labels, mask)
            with pytest.raises(BackendError, match="closed"):
                backend.train_step(ids, labels, mask)
        finally:
            backend.close()

    def test_dropout_is_rejected_up_front(self):
        model = make_model("w/o", 2, 1, dropout=0.1)
        with pytest.raises(BackendError, match="dropout"):
            create_backend("mp", model)

    def test_unknown_backend_name_rejected(self):
        model = make_model("w/o", 1, 2)
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("cuda", model)


class TestConfigWiring:
    def test_env_var_sets_default_backend(self, monkeypatch):
        mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=2,
                               num_heads=4, max_seq_len=16, dropout=0.0,
                               num_classes=2)
        monkeypatch.setenv("REPRO_BACKEND", "mp")
        assert ModelParallelConfig(model=mc, tp=1, pp=2).backend == "mp"
        monkeypatch.delenv("REPRO_BACKEND")
        assert ModelParallelConfig(model=mc, tp=1, pp=2).backend == "inproc"
        monkeypatch.setenv("REPRO_BACKEND", "gpu")
        with pytest.raises(ValueError, match="backend"):
            ModelParallelConfig(model=mc, tp=1, pp=2)

    def test_explicit_backend_overrides_env(self, monkeypatch):
        mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=2,
                               num_heads=4, max_seq_len=16, dropout=0.0,
                               num_classes=2)
        monkeypatch.setenv("REPRO_BACKEND", "mp")
        cfg = ModelParallelConfig(model=mc, tp=1, pp=2, backend="inproc")
        assert cfg.backend == "inproc"
