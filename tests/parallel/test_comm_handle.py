"""Handle lifecycle contracts: idempotent wait, sticky failure, shutdown.

These are the regression tests for the CommHandle/ExchangeHandle wait
semantics: a second ``wait`` returns the cached result without touching
the wire, a failed completion stays failed with a typed error, and a
handle orphaned by transport shutdown raises instead of dying on the
torn-down channel map.
"""

import numpy as np
import pytest

from repro.parallel.backend import BackendError, RankTransport
from repro.parallel.collectives import CommHandle


class TestCommHandle:
    def test_wait_completes_and_is_idempotent(self):
        calls = []
        sentinel = object()

        def finish():
            calls.append(1)
            return sentinel

        handle = CommHandle(finish)
        assert not handle.done
        assert handle.wait() is sentinel
        assert handle.done
        assert handle.wait() is sentinel  # cached, not re-received
        assert len(calls) == 1

    def test_ready_handle_is_born_complete(self):
        sentinel = object()
        handle = CommHandle.ready(sentinel)
        assert handle.done
        assert handle.wait() is sentinel
        assert handle.wait() is sentinel

    def test_failed_wait_stays_failed_with_typed_error(self):
        def finish():
            raise BackendError("peer 3 died mid-exchange", rank=3)

        handle = CommHandle(finish)
        with pytest.raises(BackendError, match="peer 3 died"):
            handle.wait()
        assert not handle.done
        # Every later wait re-raises a *typed* error naming the original
        # failure — never a silent None result for the collective.
        with pytest.raises(BackendError, match="already failed") as exc:
            handle.wait()
        assert "peer 3 died" in str(exc.value)
        assert isinstance(exc.value.__cause__, BackendError)

    def test_failure_is_raised_once_per_wait_not_swallowed(self):
        calls = []

        def finish():
            calls.append(1)
            raise RuntimeError("boom")

        handle = CommHandle(finish)
        with pytest.raises(RuntimeError):
            handle.wait()
        with pytest.raises(BackendError):
            handle.wait()
        assert len(calls) == 1  # the broken finish is never retried


class TestExchangeHandleShutdown:
    def test_wait_after_transport_close_raises_typed_error(self):
        creator = RankTransport.create(world=2)
        try:
            peer = RankTransport(creator.spec, 0)
            handle = peer.exchange_issue(
                [0, 1], np.ones(4, dtype=np.float32), timeout=1.0,
                label="orphaned exchange")
            assert not handle.done
            peer.close()
            with pytest.raises(BackendError, match="transport is closed") as exc:
                handle.wait(timeout=0.1)
            assert "orphaned exchange" in str(exc.value)
        finally:
            creator.close()
