"""The concurrency event log side channel (DYN003's data source)."""

import json

import numpy as np
import pytest

from repro.parallel.backend import conclog
from repro.parallel.backend.conclog import (
    ConcurrencyLog,
    load_events,
    maybe_install_from_env,
    payload_crc,
)


@pytest.fixture(autouse=True)
def _no_leaked_global_log():
    yield
    conclog.uninstall()


class TestConcurrencyLog:
    def test_events_get_dense_indices_and_meta_header(self):
        log = ConcurrencyLog(rank=2, world=4)
        log.emit("send", src=2, dst=3, slot=0, seq=1)
        log.emit("recv", src=3, dst=2, slot=0, seq=1, got_seq=1)
        assert [e["idx"] for e in log.events] == [0, 1, 2]
        assert log.events[0]["kind"] == "meta"
        assert log.events[0]["world"] == 4
        assert all(e["rank"] == 2 for e in log.events)

    def test_timestamps_are_monotone_within_a_rank(self):
        log = ConcurrencyLog(rank=0, world=1)
        for _ in range(10):
            log.emit("step_end", step=0)
        ts = [e["t"] for e in log.events]
        assert ts == sorted(ts)

    def test_handle_ids_are_unique_and_increasing(self):
        log = ConcurrencyLog(rank=0, world=1)
        hids = [log.next_handle_id() for _ in range(5)]
        assert hids == sorted(set(hids))

    def test_flush_appends_incrementally(self, tmp_path):
        path = tmp_path / "conc-rank0.jsonl"
        log = ConcurrencyLog(rank=0, world=2, path=path)
        log.flush()
        first = path.read_text().splitlines()
        log.emit("step_end", step=0)
        log.flush()
        log.flush()  # no duplicates on a redundant flush
        lines = path.read_text().splitlines()
        assert len(first) == 1 and len(lines) == 2
        assert json.loads(lines[1])["kind"] == "step_end"

    def test_flush_without_path_is_a_noop(self):
        ConcurrencyLog(rank=0, world=1).flush()


class TestInstall:
    def test_active_is_none_by_default(self):
        assert conclog.active() is None

    def test_env_gate_off_installs_nothing(self, monkeypatch):
        monkeypatch.delenv(conclog.ENV_VAR, raising=False)
        assert maybe_install_from_env(0, world=2) is None
        assert conclog.active() is None

    def test_env_gate_on_installs_per_rank_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv(conclog.ENV_VAR, str(tmp_path / "logs"))
        log = maybe_install_from_env(3, world=4)
        assert conclog.active() is log
        log.flush()
        assert (tmp_path / "logs" / "conc-rank3.jsonl").exists()


class TestPayloadCrc:
    def test_equal_content_equal_crc(self):
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert payload_crc(a) == payload_crc(a.copy())

    def test_mutation_changes_crc(self):
        a = np.arange(12, dtype=np.float32)
        before = payload_crc(a)
        a[5] += 1.0
        assert payload_crc(a) != before

    def test_zero_dim_and_noncontiguous_arrays(self):
        assert payload_crc(np.float32(3.5)) == payload_crc(np.full((), 3.5, np.float32))
        mat = np.arange(16, dtype=np.float32).reshape(4, 4)
        assert payload_crc(mat.T) == payload_crc(np.ascontiguousarray(mat.T))


class TestLoadEvents:
    def test_directory_concatenates_all_ranks(self, tmp_path):
        for rank in (0, 1):
            log = ConcurrencyLog(rank=rank, world=2,
                                 path=tmp_path / f"conc-rank{rank}.jsonl")
            log.emit("step_end", step=0)
            log.flush()
        events = load_events(tmp_path)
        assert {e["rank"] for e in events} == {0, 1}
        assert len(events) == 4  # meta + step_end per rank

    def test_single_file_load(self, tmp_path):
        log = ConcurrencyLog(rank=0, world=1, path=tmp_path / "conc-rank0.jsonl")
        log.flush()
        assert len(load_events(tmp_path / "conc-rank0.jsonl")) == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_events(tmp_path / "nope")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError):
            load_events(tmp_path)
