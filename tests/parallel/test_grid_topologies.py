"""The DP×TP×PP×SP grid: bitwise equivalence, degeneracy, typed validation.

Acceptance cells (ISSUE 10): ``dp2×tp1×pp1``, ``dp2×tp2×pp1`` and
``sp2×pp2`` must be bitwise-equivalent between the mp gang and the inproc
oracle — ``==`` on losses, ``array_equal`` on gradients, multiset-equal
CommEvent streams.  On a mismatch the event-stream diff is written as a
JSON artifact (``REPRO_EVENT_DIFF_DIR``) for the CI grid-equivalence job
to upload.

Degeneracy: any topology with ``dp=1, sp=1`` must produce the event
stream of the pre-grid TP×PP path — no ``dp``/``sp`` group events, and
the rank formula collapses to ``stage·tp + tp_rank``.
"""

import json
import os
from collections import Counter

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig
from repro.optim import Adam
from repro.parallel.backend import create_backend
from repro.parallel.backend.context import global_rank
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig
from repro.parallel.topology import TopologyError, validate_grid

MP_TIMEOUT = 30.0


def make_model(scheme, tp, pp, dp=1, sp=1, num_microbatches=1):
    mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=16, dropout=0.0, num_classes=3)
    cfg = ModelParallelConfig(model=mc, tp=tp, pp=pp, dp=dp, sp=sp,
                              scheme=scheme, seed=0, backend="inproc",
                              num_microbatches=num_microbatches)
    return ModelParallelBertClassifier(cfg)


def make_batch(seed=0, batch=4):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 64, size=(batch, 12))
    labels = rng.integers(0, 3, size=(batch,))
    mask = np.ones((batch, 12), dtype=np.int64)
    return ids, labels, mask


def event_key(e):
    return (e.op, e.group, e.phase, e.scheme, e.wire_bytes, e.world, e.shape,
            e.layer, e.site)


def dump_event_diff(cell, ref_events, got_events):
    """Write the CommEvent multiset diff as a CI-uploadable JSON artifact."""
    out_dir = os.environ.get("REPRO_EVENT_DIFF_DIR")
    if not out_dir:
        return
    ref_c = Counter(map(event_key, ref_events))
    got_c = Counter(map(event_key, got_events))
    diff = [
        {"event": [str(x) for x in key],
         "inproc": ref_c.get(key, 0), "mp": got_c.get(key, 0)}
        for key in sorted(set(ref_c) | set(got_c), key=str)
        if ref_c.get(key, 0) != got_c.get(key, 0)
    ]
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"event-diff-{cell}.json")
    with open(path, "w") as fh:
        json.dump({"cell": cell, "diff": diff}, fh, indent=2)


class TestGridBitwiseEquivalence:
    @pytest.mark.parametrize("dp,tp,pp,sp,scheme", [
        (2, 1, 1, 1, "w/o"),   # pure DP, dense gradient all-reduce
        (2, 1, 1, 1, "T2"),    # pure DP, EF top-k gradient wire
        (2, 2, 1, 1, "R2"),    # DP over TP gangs, random-k streams
        (1, 1, 2, 2, "w/o"),   # ring SP across a pipeline split
        (1, 1, 2, 2, "Q2"),    # SP with a quantized boundary
    ])
    def test_single_step_matches_oracle_bitwise(self, dp, tp, pp, sp, scheme):
        ids, labels, mask = make_batch()
        oracle_model = make_model(scheme, tp, pp, dp=dp, sp=sp)
        mp_model = make_model(scheme, tp, pp, dp=dp, sp=sp)

        oracle = create_backend("inproc", oracle_model)
        ref = oracle.train_step(ids, labels, mask)
        oracle.apply_grads(oracle_model, ref)

        backend = create_backend("mp", mp_model, timeout=MP_TIMEOUT)
        try:
            got = backend.train_step(ids, labels, mask)
        finally:
            backend.close()

        cell = f"dp{dp}tp{tp}pp{pp}sp{sp}-{scheme.replace('/', '_')}"
        if Counter(map(event_key, got.events)) != \
                Counter(map(event_key, ref.events)):
            dump_event_diff(cell, ref.events, got.events)

        assert got.loss == ref.loss  # bitwise, not allclose
        ref_grads = {n: p.grad for n, p in oracle_model.named_parameters()
                     if p.grad is not None}
        assert set(got.grads) == set(ref_grads)
        for name in sorted(ref_grads):
            assert np.array_equal(got.grads[name], ref_grads[name]), name
        assert Counter(map(event_key, got.events)) == \
            Counter(map(event_key, ref.events))

    def test_dp2_three_steps_keep_weights_identical(self):
        """Full loop over dp2×tp2: grads merged, Adam steps, weights pushed."""
        oracle_model = make_model("T2", 2, 1, dp=2)
        mp_model = make_model("T2", 2, 1, dp=2)
        oracle = create_backend("inproc", oracle_model)
        backend = create_backend("mp", mp_model, timeout=MP_TIMEOUT)
        opt_ref = Adam(oracle_model.parameters(), lr=1e-3)
        opt_got = Adam(mp_model.parameters(), lr=1e-3)
        try:
            for step in range(3):
                ids, labels, mask = make_batch(seed=step)

                opt_ref.zero_grad()
                ref = oracle.train_step(ids, labels, mask)
                oracle.apply_grads(oracle_model, ref)
                opt_ref.step()
                oracle.sync_weights(oracle_model)

                opt_got.zero_grad()
                got = backend.train_step(ids, labels, mask)
                backend.apply_grads(mp_model, got)
                opt_got.step()
                backend.sync_weights(mp_model)

                assert got.loss == ref.loss, f"step {step}"
        finally:
            backend.close()

        ref_state = oracle_model.state_dict()
        got_state = mp_model.state_dict()
        assert set(ref_state) == set(got_state)
        for name in sorted(ref_state):
            assert np.array_equal(ref_state[name], got_state[name]), name


class TestDegenerateTopology:
    @pytest.mark.parametrize("tp,pp,scheme", [
        (2, 1, "T2"), (1, 2, "Q2"), (2, 2, "R2"), (2, 2, "w/o"),
    ])
    def test_dp1_sp1_stream_has_no_grid_events(self, tp, pp, scheme):
        """dp=1/sp=1 degenerates to the pre-grid TP×PP event stream."""
        ids, labels, mask = make_batch()
        model = make_model(scheme, tp, pp)  # axes defaulted
        explicit = make_model(scheme, tp, pp, dp=1, sp=1)

        ref = create_backend("inproc", model).train_step(ids, labels, mask)
        got = create_backend("inproc", explicit).train_step(ids, labels, mask)

        assert all(e.group in ("tp", "pp") for e in ref.events)
        assert got.loss == ref.loss
        assert Counter(map(event_key, got.events)) == \
            Counter(map(event_key, ref.events))

    def test_rank_formula_degenerates(self):
        for tp, pp in [(1, 1), (2, 1), (1, 2), (2, 2), (4, 2)]:
            for stage in range(pp):
                for tp_rank in range(tp):
                    assert global_rank(stage, tp_rank, tp, pp=pp) == \
                        stage * tp + tp_rank


class TestDpCompressorIsolation:
    def test_ef_residuals_never_alias_across_replicas(self):
        """Each replica's EF residual advances on its own shard — no aliasing."""
        model = make_model("T2", 1, 1, dp=2)
        backend = create_backend("inproc", model)
        ids, labels, mask = make_batch()
        backend.train_step(ids, labels, mask)

        residuals = backend._dp_compressor.runtime_state()["residuals"]
        assert set(residuals) == {"dp.rank0", "dp.rank1"}
        r0, r1 = residuals["dp.rank0"], residuals["dp.rank1"]
        assert not np.shares_memory(r0, r1)
        # Different batch shards ⇒ different gradients ⇒ different residue.
        assert not np.array_equal(r0, r1)

        # A second step must keep the per-replica streams independent:
        # mutating one site's residual must not leak into the other.
        r0_before = r0.copy()
        backend._dp_compressor._residuals["dp.rank1"] = np.zeros_like(r1)
        assert np.array_equal(
            backend._dp_compressor._residuals["dp.rank0"], r0_before)

    def test_dp_runtime_state_is_namespaced(self):
        model = make_model("R2", 2, 1, dp=2)
        backend = create_backend("inproc", model)
        ids, labels, mask = make_batch()
        backend.train_step(ids, labels, mask)
        state = backend.runtime_state()
        assert "dp0" in state and "dp1" in state and "dp_grad" in state
        # Round-trips through load without touching the dp1 namespace.
        backend.load_runtime_state(state)


class TestTypedGridValidation:
    def test_world_size_must_factor_exactly(self):
        with pytest.raises(TopologyError) as exc:
            validate_grid(3, 2, 2, 1, world_size=8)
        assert exc.value.axis == "dp"
        assert "dp" in str(exc.value)

    @pytest.mark.parametrize("axis,kwargs", [
        ("dp", dict(dp=0)),
        ("tp", dict(tp=-2)),
        ("sp", dict(sp=2, tp=2)),   # sp requires tp == 1
    ])
    def test_config_rejects_bad_axis_with_typed_error(self, axis, kwargs):
        mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=2,
                               num_heads=4, max_seq_len=16, dropout=0.0)
        base = dict(tp=1, pp=1, dp=1, sp=1)
        base.update(kwargs)
        with pytest.raises(TopologyError) as exc:
            ModelParallelConfig(model=mc, scheme="w/o", **base)
        assert exc.value.axis == axis
        assert axis in str(exc.value)

    def test_create_backend_revalidates_mutated_config(self):
        model = make_model("w/o", 1, 1)
        model.config.dp = 0  # mutate after construction
        with pytest.raises(TopologyError) as exc:
            create_backend("inproc", model)
        assert exc.value.axis == "dp"

    def test_sp_must_divide_sequence_length(self):
        mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=2,
                               num_heads=4, max_seq_len=15, dropout=0.0)
        with pytest.raises(TopologyError) as exc:
            ModelParallelConfig(model=mc, tp=1, pp=1, sp=2, scheme="w/o")
        assert exc.value.axis == "sp"

    def test_env_knobs_set_default_axes(self, monkeypatch):
        mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=2,
                               num_heads=4, max_seq_len=16, dropout=0.0)
        monkeypatch.setenv("REPRO_DP", "2")
        monkeypatch.setenv("REPRO_SP", "1")
        cfg = ModelParallelConfig(model=mc, tp=1, pp=1, scheme="w/o")
        assert cfg.dp == 2 and cfg.sp == 1
        assert cfg.world_size == 2
        monkeypatch.delenv("REPRO_DP")
        monkeypatch.delenv("REPRO_SP")
        assert ModelParallelConfig(model=mc, tp=1, pp=1,
                                   scheme="w/o").world_size == 1
