"""Live telemetry over the real mp backend.

Three contracts from DESIGN decision 12:

- with ``REPRO_TELEMETRY=1`` every rank streams meta + step events over
  the queue side channel, including per-site compression fidelity;
- telemetry on vs off is *bitwise* neutral — identical losses and
  weights over a multi-step training loop (equality, not allclose);
- under the builtin straggler fault plan the health monitor's alert
  names the injected rank.
"""

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig
from repro.obs.telemetry import Collector, HealthMonitor
from repro.optim import Adam
from repro.parallel.backend import create_backend
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

MP_TIMEOUT = 30.0


def make_model(scheme="A2", tp=2, pp=2, schedule="1f1b", microbatches=2):
    mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=16, dropout=0.0, num_classes=3)
    cfg = ModelParallelConfig(model=mc, tp=tp, pp=pp, scheme=scheme, seed=0,
                              backend="mp", pipeline_schedule=schedule,
                              num_microbatches=microbatches)
    return ModelParallelBertClassifier(cfg)


def make_batch(seed=0):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 64, size=(4, 12))
    labels = rng.integers(0, 3, size=(4,))
    mask = np.ones((4, 12), dtype=np.int64)
    return ids, labels, mask


def train_loop(model, steps=2, collector=None):
    """A few real optimizer steps through the mp backend; returns losses."""
    optimizer = Adam(model.parameters(), lr=1e-3)
    losses = []
    backend = create_backend("mp", model, timeout=MP_TIMEOUT)
    try:
        for step in range(steps):
            ids, labels, mask = make_batch(seed=step)
            optimizer.zero_grad()
            result = backend.train_step(ids, labels, mask)
            backend.apply_grads(model, result)
            optimizer.step()
            backend.sync_weights(model)
            losses.append(result.loss)
            if collector is not None:
                collector.drain(backend, grace_s=0.5)
    finally:
        backend.close()
    if collector is not None:
        # close() moved any late feeder-thread batches into the backlog.
        collector.drain(backend)
    return losses


class TestSideChannel:
    def test_every_rank_streams_step_events_and_fidelity(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        collector = Collector()
        train_loop(make_model("A2"), steps=2, collector=collector)

        assert collector.ranks() == [0, 1, 2, 3]
        assert collector.world == 4
        for rank in range(4):
            assert collector.last_step(rank) == 1
            wall = collector.series(rank, "wall_ms")
            busy = collector.series(rank, "busy_ms")
            wait = collector.series(rank, "comm_wait_ms")
            assert len(wall) == 2
            assert all(v > 0 for v in wall.values())
            # busy = wall − wait by construction.
            for w, b, c in zip(wall.values(), busy.values(), wait.values()):
                assert b == pytest.approx(max(w - c, 0.0))
        # The A2 scheme compresses both TP sites and the PP boundary:
        # fidelity must arrive from the SPMD collectives, pooled per site.
        sites = collector.sites()
        assert "boundary0" in sites
        assert any(s.startswith("layer") for s in sites)
        rel = collector.series(None, "fidelity/boundary0/rel_l2")
        assert len(rel) > 0 and all(v >= 0 for v in rel.values())

    def test_channel_is_silent_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        collector = Collector()
        train_loop(make_model("w/o", schedule="gpipe", microbatches=1),
                   steps=1, collector=collector)
        assert collector.events_seen == 0
        assert collector.ranks() == []


class TestBitwiseNeutrality:
    def test_on_off_runs_are_identical(self, monkeypatch):
        def run(telemetry):
            if telemetry:
                monkeypatch.setenv("REPRO_TELEMETRY", "1")
            else:
                monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
            model = make_model("A2")
            losses = train_loop(model, steps=3)
            return losses, model.state_dict()

        losses_off, state_off = run(telemetry=False)
        losses_on, state_on = run(telemetry=True)

        assert losses_on == losses_off  # bitwise, not allclose
        assert set(state_on) == set(state_off)
        for name in sorted(state_off):
            assert np.array_equal(state_on[name], state_off[name]), name


class TestStragglerAlert:
    def test_alert_names_the_injected_rank(self, monkeypatch):
        # The builtin plan delays rank 1 before step 0 by 50 ms — far above
        # the straggler rule's 10 ms gap floor.
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("REPRO_FAULT_PLAN", "straggler")
        collector = Collector()
        monitor = HealthMonitor(collector)
        train_loop(make_model("w/o"), steps=2, collector=collector)
        monitor.check(step=2)

        stragglers = [a for a in monitor.alerts if a.rule == "straggler"]
        assert stragglers, f"no straggler alert; got {monitor.alerts}"
        assert {a.rank for a in stragglers} == {1}
        assert "rank 1" in stragglers[0].message
        # The injected delay is also visible as this rank's fault counter.
        assert sum(collector.series(1, "delays").values()) >= 1
