"""Async issue/wait overlap vs the blocking reference path, full matrix.

``MpBackend(overlap=False)`` forces every :class:`CommHandle` to complete
at issue time — the pre-overlap blocking semantics.  The contract
(DESIGN.md decision 9): enabling overlap moves *when* transfers complete,
never *what* they compute — losses, every gradient array and the
comm-event multiset must stay bitwise-identical across the whole
TP×PP × scheme matrix, including the stateful compressors (Random-K RNG
streams, error-feedback residuals) whose site order must not be perturbed
by in-flight transfers.
"""

from collections import Counter

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig
from repro.parallel.backend import create_backend
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

MP_TIMEOUT = 30.0

LAYOUTS = ((2, 1), (1, 2), (2, 2))
SCHEMES = ("w/o", "T2", "R2", "Q2", "A2")


def make_model(scheme, tp, pp, m):
    mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=16, dropout=0.0, num_classes=3)
    # Pipelined layouts run 1F1B with real microbatching so the stress
    # covers in-flight boundary sends, not just TP collectives.
    cfg = ModelParallelConfig(model=mc, tp=tp, pp=pp, scheme=scheme, seed=0,
                              backend="mp",
                              pipeline_schedule="1f1b" if pp > 1 else "gpipe",
                              num_microbatches=m)
    return ModelParallelBertClassifier(cfg)


def run_step(scheme, tp, pp, *, overlap):
    m = 2 if pp > 1 else 1
    model = make_model(scheme, tp, pp, m)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, 64, size=(4, 12))
    labels = rng.integers(0, 3, size=(4,))
    mask = np.ones((4, 12), dtype=np.int64)
    backend = create_backend("mp", model, timeout=MP_TIMEOUT, overlap=overlap)
    try:
        result = backend.train_step(ids, labels, mask)
    finally:
        backend.close()
    return result


def event_key(e):
    return (e.op, e.group, e.phase, e.scheme, e.wire_bytes, e.world, e.shape,
            e.layer, e.site)


@pytest.mark.parametrize("tp,pp", LAYOUTS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_overlap_is_bitwise_invisible(scheme, tp, pp):
    blocking = run_step(scheme, tp, pp, overlap=False)
    overlapped = run_step(scheme, tp, pp, overlap=True)

    assert overlapped.loss == blocking.loss  # bitwise, not allclose
    assert set(overlapped.grads) == set(blocking.grads)
    for name in sorted(blocking.grads):
        assert np.array_equal(overlapped.grads[name], blocking.grads[name]), name
    assert Counter(map(event_key, overlapped.events)) == \
        Counter(map(event_key, blocking.events))
