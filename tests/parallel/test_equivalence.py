"""Serial ↔ tensor-parallel numerical equivalence.

Model parallelism must compute the same function as the serial model when no
compression is applied — this is what makes the compression-accuracy
experiments attributable to compression alone.
"""

import numpy as np
import pytest

from repro import nn
from repro.compression import NoCompressor
from repro.nn.transformer import TransformerConfig
from repro.parallel import (
    ColumnParallelLinear,
    CommTracker,
    ModelParallelBertClassifier,
    ModelParallelConfig,
    ParallelAttention,
    ParallelMLP,
    ParallelTransformerLayer,
    RowParallelLinear,
)
from repro.tensor import Tensor
from repro.tensor.tensor import concatenate

RNG = np.random.default_rng(0)
IDENTITY = NoCompressor()


def small_config(**kw):
    defaults = dict(vocab_size=60, max_seq_len=16, hidden=32, num_layers=4,
                    num_heads=4, dropout=0.0)
    defaults.update(kw)
    return TransformerConfig(**defaults)


class TestColumnParallel:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_concat_of_shards_matches_serial(self, tp):
        serial = nn.Linear(8, 12, np.random.default_rng(1))
        par = ColumnParallelLinear.from_serial(serial, tp)
        x = Tensor(RNG.normal(size=(3, 5, 8)).astype(np.float32))
        shards = par(x)
        assert len(shards) == tp
        merged = concatenate(shards, axis=-1)
        np.testing.assert_allclose(merged.data, serial(x).data, rtol=1e-5, atol=1e-6)

    def test_indivisible_rejected(self):
        serial = nn.Linear(8, 10, np.random.default_rng(1))
        with pytest.raises(ValueError):
            ColumnParallelLinear.from_serial(serial, 4)

    def test_random_init_constructor(self):
        par = ColumnParallelLinear(8, 12, 3, np.random.default_rng(0))
        assert len(par.weight_shards) == 3
        assert par.weight_shards[0].shape == (8, 4)
        assert len(par.parameters()) == 6  # 3 weights + 3 biases


class TestRowParallel:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_sum_of_partials_matches_serial(self, tp):
        serial = nn.Linear(12, 8, np.random.default_rng(2))
        par = RowParallelLinear.from_serial(serial, tp)
        x = RNG.normal(size=(3, 12)).astype(np.float32)
        x_shards = [Tensor(s) for s in np.split(x, tp, axis=-1)]
        partials = par(x_shards)
        total = partials[0]
        for p in partials[1:]:
            total = total + p
        total = total + par.bias
        np.testing.assert_allclose(total.data, serial(Tensor(x)).data, rtol=1e-4, atol=1e-5)

    def test_wrong_shard_count(self):
        par = RowParallelLinear(12, 8, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            par([Tensor(np.zeros((2, 3)))])


class TestParallelMLP:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_matches_serial(self, tp):
        rng = np.random.default_rng(3)
        fc1 = nn.Linear(16, 64, rng)
        fc2 = nn.Linear(64, 16, rng)
        par = ParallelMLP.from_serial(fc1, fc2, tp)
        x = Tensor(RNG.normal(size=(2, 6, 16)).astype(np.float32))
        from repro.tensor import functional as F

        expected = fc2(F.gelu(fc1(x)))
        got = par(x, IDENTITY, CommTracker())
        np.testing.assert_allclose(got.data, expected.data, rtol=1e-4, atol=1e-5)


class TestParallelAttention:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_matches_serial(self, tp):
        serial = nn.MultiHeadAttention(32, 4, np.random.default_rng(4))
        par = ParallelAttention.from_serial(serial, tp)
        x = Tensor(RNG.normal(size=(2, 5, 32)).astype(np.float32))
        np.testing.assert_allclose(
            par(x, IDENTITY, CommTracker()).data, serial(x).data, rtol=1e-4, atol=1e-5
        )

    def test_matches_serial_with_mask(self):
        serial = nn.MultiHeadAttention(16, 4, np.random.default_rng(5))
        par = ParallelAttention.from_serial(serial, 2)
        x = Tensor(RNG.normal(size=(2, 6, 16)).astype(np.float32))
        mask = np.zeros((2, 1, 1, 6), dtype=bool)
        mask[..., 4:] = True
        np.testing.assert_allclose(
            par(x, IDENTITY, CommTracker(), mask).data, serial(x, mask).data,
            rtol=1e-4, atol=1e-5,
        )

    def test_heads_divisibility(self):
        serial = nn.MultiHeadAttention(30, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ParallelAttention.from_serial(serial, 2)


class TestParallelTransformerLayer:
    @pytest.mark.parametrize("tp", [1, 2, 4])
    def test_matches_serial(self, tp):
        cfg = small_config()
        serial = nn.TransformerLayer(cfg, np.random.default_rng(6))
        par = ParallelTransformerLayer.from_serial(serial, tp)
        x = Tensor(RNG.normal(size=(2, 8, 32)).astype(np.float32))
        np.testing.assert_allclose(
            par(x, CommTracker()).data, serial(x).data, rtol=1e-4, atol=1e-5
        )

    def test_gradients_match_serial(self, ):
        cfg = small_config()
        serial = nn.TransformerLayer(cfg, np.random.default_rng(7))
        par = ParallelTransformerLayer.from_serial(serial, 2)
        x_data = RNG.normal(size=(2, 8, 32)).astype(np.float32)

        xs = Tensor(x_data.copy(), requires_grad=True)
        serial(xs).sum().backward()
        xp = Tensor(x_data.copy(), requires_grad=True)
        par(xp, CommTracker()).sum().backward()
        np.testing.assert_allclose(xp.grad, xs.grad, rtol=1e-3, atol=1e-4)
        # Parameter gradients: compare the shared LayerNorm (same object).
        assert serial.ln1 is par.ln1


class TestFullModelEquivalence:
    @pytest.mark.parametrize("tp,pp", [(1, 1), (2, 1), (1, 2), (2, 2), (4, 1), (1, 4)])
    def test_same_seed_same_logits(self, tp, pp):
        """With identical seeds, serial and every parallel layout agree."""
        cfg = small_config(num_classes=3, seed=11)
        serial = nn.BertForSequenceClassification(cfg)
        mp = ModelParallelBertClassifier(ModelParallelConfig(cfg, tp=tp, pp=pp, seed=11))
        ids = RNG.integers(0, 60, size=(3, 10))
        np.testing.assert_allclose(mp(ids).data, serial(ids).data, rtol=1e-3, atol=1e-4)

    def test_gradients_match_serial(self):
        cfg = small_config(num_classes=2, seed=13)
        serial = nn.BertForSequenceClassification(cfg)
        mp = ModelParallelBertClassifier(ModelParallelConfig(cfg, tp=2, pp=2, seed=13))
        ids = RNG.integers(0, 60, size=(4, 8))
        labels = np.array([0, 1, 1, 0])
        serial.loss(ids, labels).backward()
        mp.loss(ids, labels).backward()
        g_serial = serial.bert.token_embedding.weight.grad
        g_mp = mp.backbone.token_embedding.weight.grad
        np.testing.assert_allclose(g_mp, g_serial, rtol=1e-3, atol=1e-5)

    def test_loss_and_predict_api(self):
        cfg = small_config(num_classes=2, seed=1)
        mp = ModelParallelBertClassifier(ModelParallelConfig(cfg, tp=2, pp=2))
        ids = RNG.integers(0, 60, size=(4, 8))
        preds = mp.predict(ids)
        assert preds.shape == (4,)
        assert np.isfinite(mp.loss(ids, np.zeros(4, dtype=np.int64)).data)

    def test_config_validation(self):
        cfg = small_config()
        with pytest.raises(ValueError):
            ModelParallelConfig(cfg, tp=3)  # heads=4 not divisible
        with pytest.raises(ValueError):
            ModelParallelConfig(cfg, pp=5)  # more stages than layers
