"""Stress tests for the shared-memory ring transport under the mp backend.

Everything here runs in one process: ``ShmChannel`` works over any
writable buffer, so the single-producer/single-consumer ring protocol is
exercised over plain bytearrays, and ``RankTransport`` peers attach to
the same segment from threads.  The multi-process path on top of this
protocol is covered by ``test_backend_equivalence.py``.
"""

import threading

import numpy as np
import pytest

from repro.parallel.backend import (
    BackendError,
    DEFAULT_SLOTS,
    HEADER_SIZE,
    RankTransport,
    ShmBarrier,
    ShmChannel,
)

CAPACITY = 1 << 16

WIRE_DTYPES = ["float32", "float16", "float64", "int32", "int64", "uint8", "bool"]


def make_pair(capacity=CAPACITY, src=0, dst=1, slots=DEFAULT_SLOTS):
    """Sender and receiver views of one ring mailbox."""
    buf = bytearray(slots * (HEADER_SIZE + capacity))
    tx = ShmChannel(buf, capacity, src=src, dst=dst, slots=slots)
    rx = ShmChannel(buf, capacity, src=src, dst=dst, slots=slots)
    return tx, rx


class TestShmChannel:
    def test_round_trip_preserves_dtype_shape_and_bytes(self):
        tx, rx = make_pair()
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        tx.send(arr)
        out = rx.recv()
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert np.array_equal(out, arr)

    @pytest.mark.parametrize("dtype", WIRE_DTYPES)
    def test_every_wire_dtype_round_trips(self, dtype):
        tx, rx = make_pair()
        rng = np.random.default_rng(3)
        arr = (rng.random((5, 7)) * 100).astype(dtype)
        tx.send(arr)
        out = rx.recv()
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, arr)

    def test_zero_row_tensor_round_trips(self):
        """0-element payloads still carry dtype and shape in the header."""
        tx, rx = make_pair()
        for shape in [(0, 8), (0,), (4, 0, 2)]:
            arr = np.empty(shape, dtype=np.float32)
            tx.send(arr)
            out = rx.recv()
            assert out.shape == shape and out.dtype == np.float32

    def test_zero_dim_scalar_round_trips(self):
        tx, rx = make_pair()
        arr = np.full((), 3.25, dtype=np.float32)
        tx.send(arr)
        out = rx.recv()
        assert out.shape == () and out.dtype == np.float32
        assert out == np.float32(3.25)

    def test_200_randomized_shapes_per_dtype(self):
        """Soak the ring: many sequential transfers across wraparound."""
        rng = np.random.default_rng(0)
        for dtype in ("float32", "float16"):
            tx, rx = make_pair()
            for _ in range(200):
                ndim = int(rng.integers(0, 4))
                shape = tuple(int(rng.integers(0, 9)) for _ in range(ndim))
                arr = rng.standard_normal(shape).astype(dtype)
                tx.send(arr)
                out = rx.recv()
                assert out.dtype == arr.dtype and out.shape == arr.shape
                assert np.array_equal(out, arr)

    def test_sender_runs_ahead_up_to_ring_depth(self):
        """A sender never blocks until the receiver lags a full ring."""
        tx, rx = make_pair(slots=4)
        for i in range(4):  # all four issue without a matching recv
            tx.send(np.full((8,), i, dtype=np.int32), timeout=0.5)
        for i in range(4):  # FIFO drain, in order
            assert rx.recv()[0] == i

    def test_fifo_order_preserved_across_wraparound(self):
        tx, rx = make_pair(slots=3)
        sent = 0
        received = 0
        for i in range(17):
            tx.send(np.full((2,), i, dtype=np.int64))
            sent += 1
            if sent - received == 3:  # ring full: drain two, keep one in flight
                assert rx.recv()[0] == received
                assert rx.recv()[0] == received + 1
                received += 2
        while received < sent:
            assert rx.recv()[0] == received
            received += 1

    def test_noncontiguous_input_is_sent_contiguously(self):
        tx, rx = make_pair()
        arr = np.arange(36, dtype=np.float32).reshape(6, 6)[::2, ::3]
        assert not arr.flags["C_CONTIGUOUS"]
        tx.send(arr)
        assert np.array_equal(rx.recv(), arr)

    def test_seq_numbers_are_monotonic_across_messages(self):
        tx, rx = make_pair()
        for i in range(5):
            tx.send(np.full((2,), i, dtype=np.int64))
            assert rx.recv()[0] == i
        assert tx._send_seq == rx._recv_seq == 5

    def test_out_of_order_message_raises(self):
        tx, rx = make_pair(slots=4)
        tx.send(np.zeros(1, dtype=np.float32))
        # Receiver desyncs by a full ring: it polls slot 0 expecting seq 9
        # but finds the stale seq-1 message there.
        rx._recv_seq = 8
        with pytest.raises(BackendError, match="out-of-order"):
            rx.recv()

    def test_corrupted_magic_raises_instead_of_decoding_garbage(self):
        tx, rx = make_pair()
        tx.send(np.zeros(3, dtype=np.float32))
        import struct

        struct.pack_into("<I", tx._buf, 8, 0xDEADBEEF)  # clobber magic field
        with pytest.raises(BackendError, match="bad magic"):
            rx.recv()

    def test_payload_over_capacity_raises_typed_error(self):
        tx, _ = make_pair(capacity=64)
        with pytest.raises(BackendError, match="exceeds channel capacity"):
            tx.send(np.zeros(64, dtype=np.float64))

    def test_unsupported_dtype_raises(self):
        tx, _ = make_pair()
        with pytest.raises(BackendError, match="unsupported wire dtype"):
            tx.send(np.zeros(2, dtype=np.complex64))

    def test_send_into_full_ring_times_out_naming_mailbox_and_seq(self):
        """Deadline attribution: peer rank, mailbox, slot and message seq."""
        tx, _ = make_pair(src=2, dst=5, slots=2)
        tx.send(np.zeros(1, dtype=np.float32))
        tx.send(np.zeros(1, dtype=np.float32))
        with pytest.raises(BackendError, match="rank 5") as exc:
            tx.send(np.zeros(1, dtype=np.float32), timeout=0.05)
        assert exc.value.rank == 5
        msg = str(exc.value)
        assert "mailbox 2->5" in msg and "slot 0" in msg and "seq 3" in msg

    def test_recv_from_empty_ring_times_out_naming_sender(self):
        _, rx = make_pair(src=3, dst=0)
        with pytest.raises(BackendError, match="rank 3") as exc:
            rx.recv(timeout=0.05)
        assert exc.value.rank == 3
        msg = str(exc.value)
        assert "mailbox 3->0" in msg and "seq 1" in msg

    def test_buffer_too_small_rejected_at_construction(self):
        with pytest.raises(ValueError, match="too small"):
            ShmChannel(bytearray(HEADER_SIZE), 64, src=0, dst=1)

    def test_single_slot_ring_degenerates_to_rendezvous(self):
        tx, rx = make_pair(slots=1)
        for i in range(3):
            tx.send(np.full((1,), i, dtype=np.int32))
            assert rx.recv()[0] == i
        tx.send(np.zeros(1, dtype=np.float32))
        with pytest.raises(BackendError, match="drain"):
            tx.send(np.zeros(1, dtype=np.float32), timeout=0.05)


class TestSingleStepSeams:
    """try_send / try_recv / arrive / peers_ready — the verification seams
    the DYN004 model checker single-steps."""

    def test_try_recv_on_empty_ring_returns_none(self):
        _, rx = make_pair(slots=2)
        assert rx.try_recv() is None

    def test_try_send_refuses_exactly_at_ring_depth(self):
        for slots in (1, 2, 4):
            tx, rx = make_pair(slots=slots)
            for i in range(slots):
                assert tx.try_send(np.full((1,), i, dtype=np.int32))
            assert not tx.try_send(np.zeros(1, dtype=np.int32))
            assert tx._send_seq == slots  # the refusal mutated nothing
            assert rx.try_recv()[0] == 0
            assert tx.try_send(np.full((1,), slots, dtype=np.int32))

    def test_wraparound_soak_over_twice_the_ring_depth(self):
        """Satellite contract: >= 2x slots messages through try_send/try_recv,
        FIFO payload order preserved across every slot-reuse boundary."""
        for slots in (1, 2, 4):
            tx, rx = make_pair(slots=slots)
            n = 2 * slots + 3
            sent = received = 0
            while received < n:
                if sent < n and tx.try_send(np.full((1,), sent, dtype=np.int64)):
                    sent += 1
                out = rx.try_recv()
                if out is not None:
                    assert out[0] == received
                    received += 1
            assert tx._send_seq == rx._recv_seq == n
            assert rx.try_recv() is None

    def test_tampered_seq_field_raises_naming_slot_and_seq(self):
        """Satellite contract: inject a seq mismatch into the slot header;
        the receiver must reject it with slot and seq in the message."""
        import struct

        tx, rx = make_pair(slots=2)
        tx.send(np.zeros(1, dtype=np.float32))
        struct.pack_into("<I", tx._buf, 4, 99)  # slot 0 header seq field
        with pytest.raises(BackendError, match="out-of-order") as exc:
            rx.try_recv()
        msg = str(exc.value)
        assert "slot 0" in msg and "seq 99" in msg and "expected 1" in msg


class TestShmBarrier:
    def test_single_rank_world_advances_generations(self):
        buf = bytearray(4)
        barrier = ShmBarrier(buf, world=1, rank=0)
        assert barrier.wait() == 1
        assert barrier.wait() == 2

    def test_timeout_names_the_straggler_rank_and_generation(self):
        buf = bytearray(8)
        barrier = ShmBarrier(buf, world=2, rank=0)
        with pytest.raises(BackendError, match="rank 1") as exc:
            barrier.wait(timeout=0.05)
        assert exc.value.rank == 1
        assert "generation 1" in str(exc.value)

    def test_generation_reuse_is_not_satisfied_by_stale_slots(self):
        """Satellite contract: the same slots host generation after
        generation; a slot still holding gen N must read as a straggler
        for gen N+1, never as an arrival."""
        buf = bytearray(8)
        b0 = ShmBarrier(buf, world=2, rank=0)
        b1 = ShmBarrier(buf, world=2, rank=1)
        for gen in (1, 2, 3):
            assert b0.arrive() == gen
            assert b0.peers_ready(gen) == 1  # rank 1 still at gen - 1
            assert b1.arrive() == gen
            assert b0.peers_ready(gen) is None
            assert b1.peers_ready(gen) is None

    def test_wait_interleaves_with_peer_arrivals(self):
        buf = bytearray(8)
        b0 = ShmBarrier(buf, world=2, rank=0)
        b1 = ShmBarrier(buf, world=2, rank=1)
        b1.arrive()
        assert b0.wait(timeout=1.0) == 1  # peer already published gen 1
        b1.arrive()
        assert b0.wait(timeout=1.0) == 2

    def test_buffer_too_small_rejected_at_construction(self):
        with pytest.raises(ValueError, match="too small"):
            ShmBarrier(bytearray(4), world=2, rank=0)


class TestRankTransport:
    def test_exchange_between_threaded_peers(self):
        """Two attached peers all-gather over the creator's segment."""
        creator = RankTransport.create(world=2)
        results = {}

        def run(rank):
            peer = RankTransport(creator.spec, rank)
            try:
                arr = np.full((3, 3), float(rank), dtype=np.float32)
                results[rank] = peer.exchange([0, 1], arr, timeout=10.0)
            finally:
                peer.close()

        try:
            threads = [threading.Thread(target=run, args=(r,)) for r in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            for rank in (0, 1):
                gathered = results[rank]
                assert set(gathered) == {0, 1}
                for src, arr in gathered.items():
                    assert np.array_equal(
                        arr, np.full((3, 3), float(src), dtype=np.float32))
        finally:
            creator.close()

    def test_exchange_issue_overlaps_with_local_work(self):
        """issue → independent work → wait returns the full gather."""
        creator = RankTransport.create(world=2)
        results = {}

        def run(rank):
            peer = RankTransport(creator.spec, rank)
            try:
                peer.timeline = []
                arr = np.full((4,), float(rank), dtype=np.float32)
                handle = peer.exchange_issue([0, 1], arr, timeout=10.0)
                assert not handle.done
                scratch = arr * 2  # stand-in for overlapped compute
                out = handle.wait(timeout=10.0)
                assert handle.done
                assert handle.wait() is out  # idempotent
                results[rank] = (out, scratch, list(peer.timeline))
            finally:
                peer.close()

        try:
            threads = [threading.Thread(target=run, args=(r,)) for r in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            for rank in (0, 1):
                out, _, timeline = results[rank]
                assert set(out) == {0, 1}
                cats = {s["cat"] for s in timeline}
                assert "mp.async" in cats  # in-flight window recorded
        finally:
            creator.close()

    def test_send_recv_and_barrier_between_threaded_peers(self):
        creator = RankTransport.create(world=2)
        received = {}

        def sender():
            peer = RankTransport(creator.spec, 0)
            try:
                peer.barrier_wait(timeout=10.0)
                peer.send(1, np.arange(10, dtype=np.int32), timeout=10.0)
            finally:
                peer.close()

        def receiver():
            peer = RankTransport(creator.spec, 1)
            try:
                peer.barrier_wait(timeout=10.0)
                received["arr"] = peer.recv(0, timeout=10.0)
            finally:
                peer.close()

        try:
            threads = [threading.Thread(target=sender),
                       threading.Thread(target=receiver)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert np.array_equal(received["arr"], np.arange(10, dtype=np.int32))
        finally:
            creator.close()

    def test_wait_spans_recorded_when_timeline_attached(self):
        creator = RankTransport.create(world=2)
        try:
            a = RankTransport(creator.spec, 0)
            b = RankTransport(creator.spec, 1)
            try:
                a.timeline = []
                a.send(1, np.zeros(4, dtype=np.float32))
                b.recv(0)
                assert [s["name"] for s in a.timeline] == ["send->r1"]
                assert all(s["cat"] == "mp.wait" for s in a.timeline)
            finally:
                a.close()
                b.close()
        finally:
            creator.close()

    def test_segment_unlinked_after_creator_close(self):
        creator = RankTransport.create(world=2)
        spec = dict(creator.spec)
        creator.close()
        with pytest.raises(BackendError, match="gone"):
            RankTransport(spec, 0)

    def test_spec_without_slots_attaches_with_default_ring(self):
        """Older specs (no "slots" key) keep working via the default."""
        creator = RankTransport.create(world=2)
        try:
            spec = {k: v for k, v in creator.spec.items() if k != "slots"}
            peer = RankTransport(spec, 0)
            assert peer.slots == DEFAULT_SLOTS
            peer.close()
        finally:
            creator.close()

    def test_close_is_idempotent_and_no_leak_across_constructions(self):
        """Repeated create/close cycles never collide or leak segments."""
        names = set()
        for _ in range(10):
            t = RankTransport.create(world=2, capacity=1 << 12)
            names.add(t.spec["name"])
            t.close()
            t.close()  # second close is a no-op
        assert len(names) == 10
