"""Shutdown regressions for the mp backend: bounded teardown, no shm
leaks on any path, and safety on partially-constructed backends.

Two of the three bugs here shipped: ``close()`` granted each process its
own join timeout (a gang of stuck workers serialized into world ×
timeout), and the terminate path could drop the shared-memory segment's
unlink when a worker died while attached.
"""

import json
import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig
from repro.parallel.backend import BackendError, create_backend, faults
from repro.parallel.backend.mp import MpBackend
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

MP_TIMEOUT = 30.0


def make_model(dropout=0.0, tp=2, pp=1):
    mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=16, dropout=dropout, num_classes=2, seed=0)
    cfg = ModelParallelConfig(model=mc, tp=tp, pp=pp, scheme="w/o", seed=0,
                              backend="mp")
    return ModelParallelBertClassifier(cfg)


def assert_shm_unlinked(name: str) -> None:
    """The segment must be gone from the OS, not merely detached."""
    with pytest.raises(FileNotFoundError):
        seg = shared_memory.SharedMemory(name=name)
        seg.close()  # pragma: no cover - only on leak


class TestShutdown:
    def test_clean_close_unlinks_segment(self):
        backend = create_backend("mp", make_model(), timeout=MP_TIMEOUT)
        name = backend.transport.spec["name"]
        backend.close()
        assert_shm_unlinked(name)
        assert all(not p.is_alive() for p in backend._procs)

    def test_close_is_idempotent(self):
        backend = create_backend("mp", make_model(), timeout=MP_TIMEOUT)
        backend.close()
        backend.close()  # second call is a no-op, not an error

    def test_kill_then_close_does_not_leak_shm(self):
        """SIGKILL a worker while it is attached, then tear down."""
        backend = create_backend("mp", make_model(), timeout=10.0)
        name = backend.transport.spec["name"]
        victim = backend._procs[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(5.0)
        backend.close()
        assert_shm_unlinked(name)

    def test_error_path_close_unlinks_shm(self):
        """The gang a failed step tears down must not leak its segment."""
        backend = create_backend("mp", make_model(), timeout=10.0)
        name = backend.transport.spec["name"]
        os.kill(backend._procs[1].pid, signal.SIGKILL)
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 64, size=(4, 16))
        labels = rng.integers(0, 2, size=(4,))
        with pytest.raises(BackendError):
            backend.train_step(ids, labels, None)
        assert backend._closed
        assert_shm_unlinked(name)

    def test_stuck_worker_shutdown_is_globally_bounded(self):
        """A wedged rank costs ~shutdown_timeout total, not per process.

        The worker is wedged deterministically: a step-fault delay much
        longer than the shutdown budget keeps it inside ``time.sleep``
        while ``close()`` runs.  With the old per-process ``join(0.1)``
        floor this still passed; the real regression guard is the global
        deadline — world × stuck must not serialize.
        """
        plan = json.dumps({"faults": [
            {"kind": "delay", "rank": r, "step": 0, "seconds": 30.0}
            for r in range(2)
        ]})
        saved = os.environ.get(faults.ENV_VAR)
        os.environ[faults.ENV_VAR] = plan
        try:
            backend = create_backend("mp", make_model(), timeout=MP_TIMEOUT,
                                     shutdown_timeout=1.0)
        finally:
            if saved is None:
                os.environ.pop(faults.ENV_VAR, None)
            else:
                os.environ[faults.ENV_VAR] = saved
        name = backend.transport.spec["name"]
        rng = np.random.default_rng(0)
        ids = rng.integers(0, 64, size=(4, 16))
        labels = rng.integers(0, 2, size=(4,))
        # Fire the step but do not collect: every worker is now sleeping
        # 30s inside the injected delay and cannot see the shutdown.
        backend._send_all(("step", ids, labels, None, False))
        t0 = time.monotonic()
        backend.close()
        elapsed = time.monotonic() - t0
        # Budget: shutdown_timeout (1s) + shared 1s terminate grace +
        # slack.  The old per-process accounting would exceed this as
        # soon as more than a couple of ranks wedge.
        assert elapsed < 4.0, f"close() took {elapsed:.1f}s"
        assert all(not p.is_alive() for p in backend._procs)
        assert_shm_unlinked(name)

    def test_partially_constructed_backend_close_is_safe(self):
        """__init__ failing before spawn leaves close()/__del__ harmless."""
        with pytest.raises(BackendError, match="dropout"):
            MpBackend(make_model(dropout=0.1))
        # close() on a never-initialized instance must not raise either.
        MpBackend.__new__(MpBackend).close()
