"""Pipeline schedule machinery + 1F1B end-to-end equivalence.

:func:`repro.parallel.pipeline.schedule_ops` is the single op list the
backend workers execute verbatim; these tests pin its structure (warmup
depth, steady-state interleave, ascending backward order, peak in-flight
accounting) and then drive the real mp gang under 1F1B, asserting losses,
gradients and the comm-event multiset stay bitwise-identical to the
serial inproc oracle — the schedule reorders work, it must never change
a single bit of it.
"""

from collections import Counter

import numpy as np
import pytest

from repro.nn.transformer import TransformerConfig
from repro.parallel.backend import create_backend
from repro.parallel.pipeline import (
    SCHEDULES,
    ScheduleOp,
    iteration_slots,
    peak_inflight_microbatches,
    schedule_ops,
    warmup_depth,
)
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

MP_TIMEOUT = 30.0


def make_model(scheme, tp, pp, schedule="gpipe", m=1):
    mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=16, dropout=0.0, num_classes=3)
    cfg = ModelParallelConfig(model=mc, tp=tp, pp=pp, scheme=scheme, seed=0,
                              backend="inproc", pipeline_schedule=schedule,
                              num_microbatches=m)
    return ModelParallelBertClassifier(cfg)


def make_batch(seed=0, batch=4):
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 64, size=(batch, 12))
    labels = rng.integers(0, 3, size=(batch,))
    mask = np.ones((batch, 12), dtype=np.int64)
    return ids, labels, mask


def event_key(e):
    return (e.op, e.group, e.phase, e.scheme, e.wire_bytes, e.world, e.shape,
            e.layer, e.site)


class TestScheduleOps:
    def test_gpipe_is_all_forwards_then_all_backwards(self):
        ops = schedule_ops("gpipe", 4, 1, 3)
        assert ops == [ScheduleOp("F", 0), ScheduleOp("F", 1), ScheduleOp("F", 2),
                       ScheduleOp("B", 0), ScheduleOp("B", 1), ScheduleOp("B", 2)]

    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("pp,m", [(2, 1), (2, 4), (4, 2), (4, 8)])
    def test_every_microbatch_forward_and_backward_once(self, schedule, pp, m):
        for stage in range(pp):
            ops = schedule_ops(schedule, pp, stage, m)
            assert Counter(o.kind for o in ops) == {"F": m, "B": m}
            fwd = [o.microbatch for o in ops if o.kind == "F"]
            bwd = [o.microbatch for o in ops if o.kind == "B"]
            # Ascending order in BOTH directions under BOTH schedules:
            # this is what keeps gradient accumulation (and stateful
            # compressor streams) bitwise-identical across schedules.
            assert fwd == sorted(range(m)) and bwd == sorted(range(m))

    def test_1f1b_warmup_depth_shrinks_downstream(self):
        assert [warmup_depth("1f1b", 4, s, 8) for s in range(4)] == [3, 2, 1, 0]
        # Capped by m when the pipeline is deeper than the microbatch count.
        assert warmup_depth("1f1b", 4, 0, 2) == 2
        assert [warmup_depth("gpipe", 4, s, 8) for s in range(4)] == [8] * 4

    def test_1f1b_steady_state_alternates(self):
        ops = schedule_ops("1f1b", 4, 0, 8)
        kinds = "".join(o.kind for o in ops)
        assert kinds == "FFF" + "FB" * 5 + "BBB"

    def test_last_stage_has_no_warmup(self):
        ops = schedule_ops("1f1b", 4, 3, 4)
        assert "".join(o.kind for o in ops) == "FBFBFBFB"

    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("pp,m", [(2, 4), (4, 2), (4, 8)])
    def test_peak_inflight_matches_op_walk(self, schedule, pp, m):
        """The memory headline is derivable from the op list itself."""
        for stage in range(pp):
            live = peak = 0
            for op in schedule_ops(schedule, pp, stage, m):
                live += 1 if op.kind == "F" else -1
                peak = max(peak, live)
            assert peak == peak_inflight_microbatches(schedule, pp, stage, m)
            assert peak <= peak_inflight_microbatches("gpipe", pp, stage, m)

    def test_1f1b_keeps_gpipe_slot_count(self):
        assert iteration_slots("1f1b", 8, 4) == iteration_slots("gpipe", 8, 4) == 11

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline schedule"):
            schedule_ops("interleaved", 2, 0, 4)
        with pytest.raises(ValueError, match="pipeline_schedule"):
            make_model("w/o", 1, 2, schedule="zigzag")

    def test_env_var_sets_default_schedule(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE", "1f1b")
        mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4,
                               num_heads=4, max_seq_len=16, dropout=0.0,
                               num_classes=3)
        assert ModelParallelConfig(model=mc, tp=1, pp=2).pipeline_schedule == "1f1b"
        monkeypatch.delenv("REPRO_SCHEDULE")
        assert ModelParallelConfig(model=mc, tp=1, pp=2).pipeline_schedule == "gpipe"


class Test1F1BEquivalence:
    """The 1F1B mp gang against the serial microbatched oracle."""

    @pytest.mark.parametrize("tp,pp,scheme", [
        (2, 2, "A2"),   # learnable codec: grads replayed over raw partials
        (1, 2, "Q2"),   # pure PP, quantized boundary
        (2, 2, "R2"),   # per-site RNG streams must advance in mb order
    ])
    def test_1f1b_step_matches_oracle_bitwise(self, tp, pp, scheme):
        m = 2
        ids, labels, mask = make_batch()
        oracle_model = make_model(scheme, tp, pp, schedule="gpipe", m=m)
        mp_model = make_model(scheme, tp, pp, schedule="1f1b", m=m)

        ref = create_backend("inproc", oracle_model).train_step(ids, labels, mask)
        backend = create_backend("mp", mp_model, timeout=MP_TIMEOUT)
        try:
            got = backend.train_step(ids, labels, mask)
        finally:
            backend.close()

        assert got.loss == ref.loss  # bitwise, not allclose
        ref_grads = {n: p.grad for n, p in oracle_model.named_parameters()
                     if p.grad is not None}
        assert set(got.grads) == set(ref_grads)
        for name in sorted(ref_grads):
            assert np.array_equal(got.grads[name], ref_grads[name]), name
        assert Counter(map(event_key, got.events)) == \
            Counter(map(event_key, ref.events))

    def test_1f1b_timelines_carry_async_spans(self):
        """Steady-state 1F1B keeps sends in flight: the worker timelines
        must record ``mp.async`` windows, and the trace exporter must turn
        them into Chrome async ``b``/``e`` pairs."""
        from repro.obs.trace import worker_timelines_trace

        model = make_model("T2", 1, 2, schedule="1f1b", m=2)
        backend = create_backend("mp", model, timeout=MP_TIMEOUT,
                                 collect_timelines=True)
        try:
            result = backend.train_step(*make_batch())
        finally:
            backend.close()

        async_spans = [s for spans in result.timelines.values()
                       for s in spans if s["cat"] == "mp.async"]
        assert async_spans, "no in-flight comm window was recorded"

        trace = worker_timelines_trace(result.timelines, {"run_id": "t"})
        begins = [e for e in trace["traceEvents"] if e.get("ph") == "b"]
        ends = [e for e in trace["traceEvents"] if e.get("ph") == "e"]
        assert begins and len(begins) == len(ends)
        assert all(e["cat"] == "mp.async" for e in begins)
        assert len({e["id"] for e in begins}) == len(begins)  # distinct ids
        # No mp.async span leaked through as an X slice.
        assert not [e for e in trace["traceEvents"]
                    if e.get("ph") == "X" and e.get("cat") == "mp.async"]
