"""Deterministic fault injection (chaos seam): every fault class either
recovers within the retry budget or raises a typed BackendError naming
the rank/mailbox — never a hang.

Single-process tests drive ``ShmChannel`` over a bytearray with a plan
installed via ``faults.install``; the mp integration tests arm the plan
through ``REPRO_FAULT_PLAN`` (read by each worker at spawn) and assert
the faulted run still produces the healthy run's numbers.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.lint.race_check import run_race_check_on_path
from repro.parallel.backend import (
    DEFAULT_SLOTS,
    HEADER_SIZE,
    BackendError,
    CorruptMessage,
    ShmChannel,
    create_backend,
    load_events,
)
from repro.parallel.backend import faults
from repro.nn.transformer import TransformerConfig
from repro.parallel.runtime import ModelParallelBertClassifier, ModelParallelConfig

CAPACITY = 1 << 16
MP_TIMEOUT = 30.0


def make_pair(src=0, dst=1, slots=DEFAULT_SLOTS):
    buf = bytearray(slots * (HEADER_SIZE + CAPACITY))
    tx = ShmChannel(buf, CAPACITY, src=src, dst=dst, slots=slots)
    rx = ShmChannel(buf, CAPACITY, src=src, dst=dst, slots=slots)
    return tx, rx


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    """Every test starts and ends with no plan installed."""
    faults.uninstall()
    yield
    faults.uninstall()


def plan_of(*specs, retry_budget=3):
    return faults.FaultPlan({"retry_budget": retry_budget,
                             "faults": list(specs)})


class TestPlanParsing:
    def test_inline_json_builtin_and_file(self, tmp_path):
        inline = faults.parse_plan(json.dumps(BUILTIN := faults.BUILTIN_PLANS["mixed"]))
        assert len(inline.faults) == len(BUILTIN["faults"])
        for name in faults.BUILTIN_PLANS:
            assert faults.parse_plan(name).retry_budget >= 1
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"faults": [
            {"kind": "delay", "rank": 0, "step": 0, "seconds": 0.01}]}))
        assert len(faults.parse_plan(str(path)).faults) == 1

    def test_bad_value_names_the_options(self):
        with pytest.raises(ValueError, match="mixed"):
            faults.parse_plan("no-such-plan")

    def test_bad_kind_and_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultSpec(kind="explode", rank=0)
        with pytest.raises(ValueError, match="unknown corrupt field"):
            faults.FaultSpec(kind="corrupt", src=0, dst=1, field="checksum")
        with pytest.raises(ValueError, match="needs src/dst"):
            faults.FaultSpec(kind="drop")

    def test_env_install_round_trip(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        assert faults.maybe_install_from_env() is None
        assert faults.active() is None
        monkeypatch.setenv(faults.ENV_VAR, "straggler")
        plan = faults.maybe_install_from_env()
        assert plan is not None and faults.active() is plan


class TestChannelFaults:
    def test_drop_recovers_within_budget(self):
        faults.install(plan_of(
            {"kind": "drop", "src": 0, "dst": 1, "seq": 1, "times": 2}))
        tx, rx = make_pair()
        arr = np.arange(16, dtype=np.float32)
        tx.send(arr)
        assert faults.active().injected["drop"] == 2
        assert np.array_equal(rx.recv(), arr)

    def test_drop_budget_exhaustion_raises_typed_error(self):
        faults.install(plan_of(
            {"kind": "drop", "src": 0, "dst": 1, "seq": 1, "times": 5},
            retry_budget=3))
        tx, _ = make_pair()
        with pytest.raises(BackendError, match=r"mailbox 0->1.*budget \(3\) exhausted"):
            tx.send(np.zeros(4, dtype=np.float32))

    @pytest.mark.parametrize("field", ["payload", "header"])
    def test_corrupt_recovers_by_re_read(self, field):
        faults.install(plan_of(
            {"kind": "corrupt", "src": 0, "dst": 1, "seq": 1, "field": field}))
        tx, rx = make_pair()
        arr = np.arange(32, dtype=np.float32).reshape(4, 8)
        tx.send(arr)
        out = rx.recv()
        assert faults.active().injected["corrupt"] == 1
        assert np.array_equal(out, arr)

    def test_corrupt_budget_exhaustion_raises_typed_error(self):
        faults.install(plan_of(
            {"kind": "corrupt", "src": 0, "dst": 1, "seq": 1, "times": 5},
            retry_budget=3))
        tx, rx = make_pair()
        tx.send(np.ones(8, dtype=np.float32))
        with pytest.raises(BackendError, match="still corrupt after 3 re-reads"):
            rx.recv()

    def test_genuine_corruption_raises_immediately_even_with_plan(self):
        """Real (non-injected) damage must never be masked by retries."""
        faults.install(plan_of())  # plan present, but injects nothing
        tx, rx = make_pair()
        tx.send(np.ones(8, dtype=np.float32))
        tx._buf[8:12] = b"\x00\x00\x00\x00"  # smash the magic word
        with pytest.raises(CorruptMessage):
            rx.recv()

    def test_channel_delay_sleeps_then_delivers(self):
        faults.install(plan_of(
            {"kind": "delay", "src": 0, "dst": 1, "seq": 1, "seconds": 0.05}))
        tx, rx = make_pair()
        t0 = time.monotonic()
        tx.send(np.ones(4, dtype=np.float32))
        assert time.monotonic() - t0 >= 0.05
        assert rx.recv() is not None
        assert faults.active().injected["delay"] == 1

    def test_healthy_channel_unaffected_by_plan_for_other_mailbox(self):
        faults.install(plan_of(
            {"kind": "drop", "src": 2, "dst": 3, "seq": 1, "times": 2}))
        tx, rx = make_pair(src=0, dst=1)
        arr = np.arange(8, dtype=np.float32)
        tx.send(arr)
        assert np.array_equal(rx.recv(), arr)
        assert not faults.active().injected


def _make_mp_model(seed=0):
    mc = TransformerConfig(vocab_size=64, hidden=32, num_layers=4, num_heads=4,
                           max_seq_len=16, dropout=0.0, num_classes=2, seed=seed)
    cfg = ModelParallelConfig(model=mc, tp=2, pp=2, scheme="R2", seed=seed,
                              backend="mp")
    return ModelParallelBertClassifier(cfg)


def _batch(seed=0):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 64, size=(4, 16)), rng.integers(0, 2, size=(4,)))


def _run_steps(n, env=None):
    """Losses from n mp steps, optionally with REPRO_FAULT_PLAN armed."""
    saved = {}
    for key, value in (env or {}).items():
        saved[key] = os.environ.get(key)
        os.environ[key] = value
    try:
        backend = create_backend("mp", _make_mp_model(), timeout=MP_TIMEOUT)
        try:
            ids, labels = _batch()
            return [backend.train_step(ids, labels, None).loss for _ in range(n)]
        finally:
            backend.close()
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


class TestMpIntegration:
    def test_faulted_run_matches_healthy_run(self):
        """Drops and corruption recover without changing the numbers."""
        plan = json.dumps({"retry_budget": 3, "faults": [
            {"kind": "drop", "src": 0, "dst": 2, "seq": 1, "times": 2},
            {"kind": "corrupt", "src": 2, "dst": 0, "seq": 1,
             "field": "payload"},
        ]})
        healthy = _run_steps(2)
        faulted = _run_steps(2, env={faults.ENV_VAR: plan})
        assert faulted == healthy

    def test_injected_kill_surfaces_as_typed_error_naming_the_rank(self):
        plan = json.dumps({"faults": [{"kind": "kill", "rank": 3, "step": 1}]})
        saved = os.environ.get(faults.ENV_VAR)
        os.environ[faults.ENV_VAR] = plan
        try:
            backend = create_backend("mp", _make_mp_model(), timeout=MP_TIMEOUT)
            try:
                ids, labels = _batch()
                backend.train_step(ids, labels, None)  # step 0: healthy
                with pytest.raises(BackendError) as err:
                    backend.train_step(ids, labels, None)  # step 1: rank 3 dies
                assert err.value.rank == 3
            finally:
                backend.close()
        finally:
            if saved is None:
                os.environ.pop(faults.ENV_VAR, None)
            else:
                os.environ[faults.ENV_VAR] = saved

    def test_faulted_run_replays_dyn003_clean(self, tmp_path):
        """Retried seqs (marked dropped) must not read as double publishes."""
        plan = json.dumps({"retry_budget": 3, "faults": [
            {"kind": "drop", "src": 0, "dst": 2, "seq": 1, "times": 2},
            {"kind": "corrupt", "src": 2, "dst": 0, "seq": 1,
             "field": "payload"},
        ]})
        log_dir = str(tmp_path / "conclog")
        _run_steps(2, env={faults.ENV_VAR: plan, "REPRO_CONC_LOG": log_dir})
        findings = run_race_check_on_path(log_dir)
        assert not findings, "\n".join(findings)
        events = load_events(log_dir)
        assert [e for e in events if e.get("dropped")], \
            "plan did not fire: no dropped send events in the log"
        assert any(e["kind"] == "fault" and e["fault"] == "corrupt"
                   for e in events)

    def test_unmarked_double_publish_is_still_flagged(self, tmp_path):
        """The DYN003 retry carve-out only exempts *marked* resends."""
        plan = json.dumps({"retry_budget": 3, "faults": [
            {"kind": "drop", "src": 0, "dst": 2, "seq": 1, "times": 2}]})
        log_dir = str(tmp_path / "conclog")
        _run_steps(1, env={faults.ENV_VAR: plan, "REPRO_CONC_LOG": log_dir})
        events = load_events(log_dir)
        for e in events:
            e.pop("dropped", None)
            e.pop("retry", None)
        from repro.lint.race_check import run_race_check
        findings = run_race_check(events)
        assert any("double publish" in f for f in findings), findings
