"""Integration: every notation-table scheme trains through the MP runtime.

A two-step optimization under each scheme must run without error, produce
finite losses, and route bytes consistent with the scheme's analytics.
"""

import numpy as np
import pytest

from repro.compression import SCHEME_LABELS, build_compressor
from repro.nn.transformer import TransformerConfig
from repro.optim import Adam
from repro.parallel import ModelParallelBertClassifier, ModelParallelConfig

RNG = np.random.default_rng(0)


def small_config():
    return TransformerConfig(vocab_size=64, max_seq_len=16, hidden=32,
                             num_layers=4, num_heads=4, num_classes=2, seed=3)


@pytest.mark.parametrize("scheme", sorted(SCHEME_LABELS))
def test_two_training_steps_per_scheme(scheme):
    cfg = small_config()
    model = ModelParallelBertClassifier(
        ModelParallelConfig(cfg, tp=2, pp=2, scheme=scheme, seed=3)
    )
    opt = Adam(model.parameters(), lr=1e-3)
    ids = RNG.integers(0, 64, size=(4, 8))
    labels = np.array([0, 1, 1, 0])
    losses = []
    for _ in range(2):
        opt.zero_grad()
        loss = model.loss(ids, labels)
        loss.backward()
        opt.step()
        losses.append(loss.item())
    assert all(np.isfinite(l) for l in losses)


@pytest.mark.parametrize("scheme", ["A1", "T1", "Q2", "R1"])
def test_forward_bytes_match_compressor_analytics(scheme):
    """The tracker's TP forward bytes equal the compressor's analytic size
    at every compressed site."""
    cfg = small_config()
    model = ModelParallelBertClassifier(
        ModelParallelConfig(cfg, tp=2, pp=1, scheme=scheme, seed=3)
    )
    ids = RNG.integers(0, 64, size=(4, 8))
    model(ids)
    comp = build_compressor(scheme, cfg.hidden)
    shape = (4, 8, cfg.hidden)
    expected = comp.compressed_bytes(shape)
    events = [e for e in model.tracker.filtered(group="tp", phase="forward")
              if e.scheme != "none"]
    assert events, "compressed layers must produce compressed events"
    for e in events:
        # Random-K regenerates its selection per call but k is fixed, and
        # quantization's group padding is deterministic: exact match.
        assert e.wire_bytes == expected, (scheme, e)


def test_scheme_changes_loss_but_not_uncompressed_layers():
    """Compression must perturb the forward only through compressed sites:
    a policy compressing zero layers reproduces the w/o loss exactly."""
    from repro.compression import CompressionPolicy

    cfg = small_config()
    ids = RNG.integers(0, 64, size=(4, 8))
    labels = np.array([0, 1, 1, 0])
    base = ModelParallelBertClassifier(ModelParallelConfig(cfg, tp=2, pp=2, seed=3))
    none_pol = ModelParallelBertClassifier(
        ModelParallelConfig(cfg, tp=2, pp=2, scheme="A2",
                            policy=CompressionPolicy.none(4), seed=3)
    )
    compressed = ModelParallelBertClassifier(
        ModelParallelConfig(cfg, tp=2, pp=2, scheme="A2", seed=3)
    )
    l_base = base.loss(ids, labels).item()
    l_none = none_pol.loss(ids, labels).item()
    l_comp = compressed.loss(ids, labels).item()
    assert l_none == pytest.approx(l_base, rel=1e-6)
    assert l_comp != pytest.approx(l_base, rel=1e-6)
