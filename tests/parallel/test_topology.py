"""Tests for cluster topology and rank layout."""

import pytest

from repro.parallel import ClusterTopology, LinkType, ParallelLayout
from repro.parallel.pipeline import PipelinePartition, gpipe_iteration_slots


class TestClusterTopology:
    def test_p3_world_size(self):
        assert ClusterTopology.p3_8xlarge().world_size == 4
        assert ClusterTopology.p3_8xlarge(4).world_size == 16

    def test_node_of(self):
        t = ClusterTopology.p3_8xlarge(2)
        assert t.node_of(0) == 0
        assert t.node_of(5) == 1

    def test_link_between(self):
        t = ClusterTopology.p3_8xlarge(2)
        assert t.link_between(0, 3) == LinkType.NVLINK
        assert t.link_between(3, 4) == LinkType.ETHERNET

    def test_local_pcie(self):
        t = ClusterTopology.local_pcie()
        assert t.intra_node_link == LinkType.PCIE

    def test_rank_range_check(self):
        with pytest.raises(ValueError):
            ClusterTopology.p3_8xlarge().node_of(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(0, 4, LinkType.NVLINK)


class TestParallelLayout:
    def test_world_size_must_match(self):
        with pytest.raises(ValueError):
            ParallelLayout(ClusterTopology.p3_8xlarge(), tp=4, pp=4)

    def test_megatron_rank_packing(self):
        lay = ParallelLayout(ClusterTopology.p3_8xlarge(4), tp=4, pp=4)
        # TP groups are consecutive ranks → inside one node
        assert lay.tp_group(0) == [0, 1, 2, 3]
        assert lay.tp_group(1) == [4, 5, 6, 7]
        assert lay.tp_link(0) == LinkType.NVLINK

    def test_tp_spanning_nodes_uses_slow_link(self):
        lay = ParallelLayout(ClusterTopology.p3_8xlarge(4), tp=8, pp=2)
        # TP group of 8 spans two 4-GPU nodes → Ethernet bottleneck,
        # which is why the paper's TP=8, PP=2 row is ~10x slower (Table 6).
        assert lay.tp_link(0) == LinkType.ETHERNET

    def test_pp_link_crosses_nodes(self):
        lay = ParallelLayout(ClusterTopology.p3_8xlarge(4), tp=4, pp=4)
        assert lay.pp_link(0) == LinkType.ETHERNET

    def test_pp_link_within_node(self):
        lay = ParallelLayout(ClusterTopology.p3_8xlarge(1), tp=2, pp=2)
        assert lay.pp_link(0) == LinkType.NVLINK

    def test_rank_coords(self):
        lay = ParallelLayout(ClusterTopology.p3_8xlarge(1), tp=2, pp=2)
        assert lay.rank(1, 1) == 3
        with pytest.raises(ValueError):
            lay.rank(2, 0)

    def test_tp1_link(self):
        lay = ParallelLayout(ClusterTopology.p3_8xlarge(1), tp=1, pp=4)
        assert lay.tp_link(0) == LinkType.NVLINK


class TestPipelinePartition:
    def test_balanced_even(self):
        p = PipelinePartition.balanced(24, 4)
        assert [len(s) for s in p.stages] == [6, 6, 6, 6]
        assert p.boundaries() == [5, 11, 17]

    def test_balanced_remainder(self):
        p = PipelinePartition.balanced(10, 4)
        assert [len(s) for s in p.stages] == [3, 3, 2, 2]
        assert sum(len(s) for s in p.stages) == 10

    def test_stage_of(self):
        p = PipelinePartition.balanced(24, 4)
        assert p.stage_of(0) == 0
        assert p.stage_of(23) == 3
        with pytest.raises(ValueError):
            p.stage_of(24)

    def test_too_many_stages(self):
        with pytest.raises(ValueError):
            PipelinePartition.balanced(2, 4)

    def test_single_stage_no_boundaries(self):
        p = PipelinePartition.balanced(8, 1)
        assert p.boundaries() == []
        assert p.num_boundaries == 0

    def test_gpipe_slots(self):
        assert gpipe_iteration_slots(8, 4) == 11
        assert gpipe_iteration_slots(1, 1) == 1
        with pytest.raises(ValueError):
            gpipe_iteration_slots(0, 4)
